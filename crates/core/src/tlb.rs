//! Per-shader-core translation lookaside buffers.
//!
//! The paper's design point (Section 6.2): one TLB per shader core,
//! shared by all SIMD lanes, looked up in parallel with the
//! virtually-indexed physically-tagged L1 data cache. Because the lookup
//! must finish by the time the L1 set is selected, capacity is bounded —
//! CACTI sizing says 128 entries is the largest geometry that adds no
//! L1 pipeline cycles; 256/512-entry TLBs pay extra cycles on *every*
//! access (Figure 6). Entries also record which warps recently hit them
//! (a 2-deep history fits in unused PTE bits, Section 8.2) to feed the
//! Common Page Matrix, and the allocating warp id to feed TCWS victim
//! tag arrays.

use gmmu_sim::stats::{Counter, Summary};
use gmmu_vm::{Ppn, Vpn};

/// How many warps a TLB entry remembers having hit it (Section 8.2 uses
/// a history length of 2, packed into unused PTE bits).
pub const WARP_HISTORY: usize = 2;

/// Non-blocking capabilities of the TLB (Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TlbMode {
    /// Naive CPU-like blocking TLB: while any page walk is outstanding,
    /// no memory instruction can access the TLB. Warps running
    /// non-memory instructions proceed unhindered.
    #[default]
    Blocking,
    /// Hits from one warp proceed under misses from another; a second
    /// missing warp is swapped out and its walk queued.
    HitUnderMiss,
    /// [`TlbMode::HitUnderMiss`] plus intra-warp overlap: threads that
    /// hit the TLB access the L1 immediately, without waiting for the
    /// warp's missing threads to finish walking.
    HitUnderMissOverlap,
}

impl TlbMode {
    /// Whether hits may proceed while walks are outstanding.
    pub fn hits_under_miss(self) -> bool {
        !matches!(self, TlbMode::Blocking)
    }

    /// Whether TLB-hit threads of a partially missing warp may access
    /// the cache before the walks resolve.
    pub fn cache_overlap(self) -> bool {
        matches!(self, TlbMode::HitUnderMissOverlap)
    }
}

/// Geometry and behaviour of one per-core TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity (the paper assumes 4-way, Section 7.2).
    pub ways: usize,
    /// Lookup ports: distinct PTE lookups per cycle.
    pub ports: usize,
    /// Non-blocking mode.
    pub mode: TlbMode,
    /// TLB MSHR entries — one per warp thread (32) in the paper.
    pub mshrs: usize,
    /// Pretend the geometry adds no access latency regardless of size
    /// (the paper's impractical "ideal 512-entry, 32-port" comparison).
    pub ideal_latency: bool,
}

impl TlbConfig {
    /// The naive baseline of Figure 2: 128 entries, 3 ports, blocking.
    pub fn naive() -> Self {
        Self {
            entries: 128,
            ways: 4,
            ports: 3,
            mode: TlbMode::Blocking,
            mshrs: 32,
            ideal_latency: false,
        }
    }

    /// The augmented design (Section 6.3): 4 ports, hit-under-miss,
    /// cache overlap. Pair with a coalescing walker for the full design.
    pub fn augmented() -> Self {
        Self {
            ports: 4,
            mode: TlbMode::HitUnderMissOverlap,
            ..Self::naive()
        }
    }

    /// The impractical ideal of Figures 7/10: 512 entries, 32 ports, no
    /// access-latency penalty.
    pub fn ideal_large() -> Self {
        Self {
            entries: 512,
            ways: 4,
            ports: 32,
            mode: TlbMode::HitUnderMissOverlap,
            mshrs: 32,
            ideal_latency: true,
        }
    }

    /// Extra pipeline cycles a lookup costs on top of the L1-parallel
    /// access, from CACTI-style sizing (Section 6.2): geometries at or
    /// below 128 entries hide entirely under L1 set selection; larger
    /// ones lengthen the memory pipeline.
    pub fn access_penalty(&self) -> u64 {
        if self.ideal_latency {
            return 0;
        }
        match self.entries {
            0..=128 => 0,
            129..=256 => 2,
            257..=512 => 4,
            _ => 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::naive()
    }
}

impl gmmu_sim::ckpt::Ckpt for TlbMode {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u8(match self {
            TlbMode::Blocking => 0,
            TlbMode::HitUnderMiss => 1,
            TlbMode::HitUnderMissOverlap => 2,
        });
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        *self = match r.u8()? {
            0 => TlbMode::Blocking,
            1 => TlbMode::HitUnderMiss,
            2 => TlbMode::HitUnderMissOverlap,
            _ => return Err(gmmu_sim::ckpt::CkptError::Corrupt("unknown TLB mode")),
        };
        Ok(())
    }
}

impl gmmu_sim::ckpt::Ckpt for TlbConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.usize(self.entries);
        w.usize(self.ways);
        w.usize(self.ports);
        self.mode.save(w);
        w.usize(self.mshrs);
        w.bool(self.ideal_latency);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.entries = r.usize()?;
        self.ways = r.usize()?;
        self.ports = r.usize()?;
        self.mode.load(r)?;
        self.mshrs = r.usize()?;
        self.ideal_latency = r.bool()?;
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    vpn: Vpn,
    ppn: Ppn,
    /// Address-space identifier of the tenant that owns this
    /// translation. Lookups match on `(asid, vpn)`, so co-resident
    /// tenants can cache the same virtual page without interference.
    asid: u16,
    last_use: u64,
    /// Warp that allocated the entry (for victim tag arrays).
    owner: u16,
    /// Last warps that hit this entry (for the CPM).
    history: [u16; WARP_HISTORY],
    hist_len: u8,
    valid: bool,
}

const INVALID_ENTRY: TlbEntry = TlbEntry {
    vpn: Vpn::new(0),
    ppn: Ppn::new(0),
    asid: 0,
    last_use: 0,
    owner: 0,
    history: [0; WARP_HISTORY],
    hist_len: 0,
    valid: false,
};

/// Result of a TLB hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbHit {
    /// The translation.
    pub ppn: Ppn,
    /// Depth of the entry in its set's LRU stack *before* this access
    /// (0 = MRU). TCWS weights scheduler updates by this depth
    /// (Section 7.2).
    pub lru_depth: u8,
    /// Warps that previously hit this entry, most recent first (CPM
    /// update input, Section 8.2).
    pub history: [u16; WARP_HISTORY],
    /// Valid prefix length of `history`.
    pub hist_len: u8,
}

/// An entry displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbVictim {
    /// Tenant the displaced entry belonged to.
    pub asid: u16,
    /// Virtual page of the displaced entry.
    pub vpn: Vpn,
    /// Warp that allocated it.
    pub owner: u16,
}

/// A set-associative, LRU, per-core TLB.
///
/// Port arbitration and access-latency charging happen in
/// [`crate::mmu::Mmu`]; this type is the replacement/lookup state.
///
/// # Examples
///
/// ```
/// use gmmu_core::tlb::{Tlb, TlbConfig};
/// use gmmu_vm::{Ppn, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig::naive());
/// assert!(tlb.lookup(Vpn::new(9), 0, 1).is_none());
/// tlb.fill(Vpn::new(9), Ppn::new(77), 0, 2);
/// let hit = tlb.lookup(Vpn::new(9), 3, 3).unwrap();
/// assert_eq!(hit.ppn, Ppn::new(77));
/// assert_eq!(hit.lru_depth, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<TlbEntry>,
    set_mask: u64,
    /// Lookups (one per distinct page presented).
    pub accesses: Counter,
    /// Lookup hits.
    pub hits: Counter,
    /// Fills performed.
    pub fills: Counter,
    /// LRU depth of hits (TCWS diagnostics).
    pub hit_depth: Summary,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or `ways`
    /// does not divide `entries`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.ways > 0 && config.entries.is_multiple_of(config.ways));
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "TLB sets must be a power of two");
        Self {
            config,
            entries: vec![INVALID_ENTRY; config.entries],
            set_mask: sets as u64 - 1,
            accesses: Counter::new(),
            hits: Counter::new(),
            fills: Counter::new(),
            hit_depth: Summary::new(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses.get() - self.hits.get()
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses.get() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses.get() as f64
        }
    }

    /// Registers this TLB's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.accesses"), self.accesses.get());
        reg.counter(format!("{prefix}.hits"), self.hits.get());
        reg.counter(format!("{prefix}.fills"), self.fills.get());
        reg.counter(format!("{prefix}.entries"), self.config.entries as u64);
        reg.gauge(format!("{prefix}.miss_rate"), self.miss_rate());
        reg.gauge(format!("{prefix}.hit_depth.mean"), self.hit_depth.mean());
    }

    #[inline]
    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.raw() & self.set_mask) as usize;
        set * self.config.ways..(set + 1) * self.config.ways
    }

    /// Looks up `vpn` on behalf of `warp` at recency `stamp`, updating
    /// LRU order, warp history, and statistics. Matches ASID-0 entries
    /// only; multi-tenant cores use [`Tlb::lookup_asid`].
    pub fn lookup(&mut self, vpn: Vpn, warp: u16, stamp: u64) -> Option<TlbHit> {
        self.lookup_asid(0, vpn, warp, stamp)
    }

    /// [`Tlb::lookup`] scoped to tenant `asid`: only entries tagged with
    /// the same ASID can hit.
    pub fn lookup_asid(&mut self, asid: u16, vpn: Vpn, warp: u16, stamp: u64) -> Option<TlbHit> {
        self.accesses.inc();
        let range = self.set_range(vpn);
        // LRU depth = how many valid entries in the set are more recent.
        let mut hit_idx = None;
        for i in range.clone() {
            let e = &self.entries[i];
            if e.valid && e.vpn == vpn && e.asid == asid {
                hit_idx = Some(i);
                break;
            }
        }
        let idx = hit_idx?;
        let depth = {
            let me = self.entries[idx].last_use;
            self.entries[range]
                .iter()
                .filter(|e| e.valid && e.last_use > me)
                .count() as u8
        };
        let e = &mut self.entries[idx];
        let hit = TlbHit {
            ppn: e.ppn,
            lru_depth: depth,
            history: e.history,
            hist_len: e.hist_len,
        };
        // Push this warp onto the entry's history (dedup the head so a
        // warp re-hitting does not flood the list).
        if e.hist_len == 0 || e.history[0] != warp {
            e.history[1] = e.history[0];
            e.history[0] = warp;
            e.hist_len = (e.hist_len + 1).min(WARP_HISTORY as u8);
        }
        e.last_use = stamp;
        self.hits.inc();
        self.hit_depth.record(depth as u64);
        Some(hit)
    }

    /// Presence check without perturbing LRU, history, or statistics
    /// (ASID 0; see [`Tlb::probe_asid`]).
    pub fn probe(&self, vpn: Vpn) -> bool {
        self.probe_asid(0, vpn)
    }

    /// [`Tlb::probe`] scoped to tenant `asid`.
    pub fn probe_asid(&self, asid: u16, vpn: Vpn) -> bool {
        self.entries[self.set_range(vpn)]
            .iter()
            .any(|e| e.valid && e.vpn == vpn && e.asid == asid)
    }

    /// Installs a translation for ASID 0, returning any displaced
    /// victim; multi-tenant cores use [`Tlb::fill_asid`].
    pub fn fill(&mut self, vpn: Vpn, ppn: Ppn, warp: u16, stamp: u64) -> Option<TlbVictim> {
        self.fill_asid(0, vpn, ppn, warp, stamp)
    }

    /// Installs a translation tagged with tenant `asid`, returning any
    /// displaced victim. The victim may belong to another tenant —
    /// capacity is shared — but a *match* (refill) never crosses ASIDs.
    pub fn fill_asid(
        &mut self,
        asid: u16,
        vpn: Vpn,
        ppn: Ppn,
        warp: u16,
        stamp: u64,
    ) -> Option<TlbVictim> {
        self.fills.inc();
        let range = self.set_range(vpn);
        let ways = &mut self.entries[range];
        // Refill over an existing entry for the same page (two walks can
        // race for one page only through MSHR merging, but stay safe).
        if let Some(e) = ways
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn && e.asid == asid)
        {
            e.ppn = ppn;
            e.last_use = stamp;
            return None;
        }
        let mut victim_idx = 0;
        let mut oldest = u64::MAX;
        for (i, e) in ways.iter().enumerate() {
            if !e.valid {
                victim_idx = i;
                break;
            }
            if e.last_use < oldest {
                oldest = e.last_use;
                victim_idx = i;
            }
        }
        let victim = ways[victim_idx].valid.then_some(TlbVictim {
            asid: ways[victim_idx].asid,
            vpn: ways[victim_idx].vpn,
            owner: ways[victim_idx].owner,
        });
        ways[victim_idx] = TlbEntry {
            vpn,
            ppn,
            asid,
            last_use: stamp,
            owner: warp,
            history: [warp, 0],
            hist_len: 1,
            valid: true,
        };
        victim
    }

    /// Invalidates every entry (TLB shootdown, Section 6.2: the GPU TLB
    /// is flushed when the launching CPU changes the page table).
    pub fn flush(&mut self) {
        self.entries.fill(INVALID_ENTRY);
    }

    /// Invalidates only the entries owned by tenant `asid` — the
    /// ASID-scoped shootdown. Other tenants' translations survive.
    pub fn flush_asid(&mut self, asid: u16) {
        for e in &mut self.entries {
            if e.valid && e.asid == asid {
                *e = INVALID_ENTRY;
            }
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Number of valid entries owned by tenant `asid` (per-tenant
    /// watchdog diagnostics).
    pub fn occupancy_asid(&self, asid: u16) -> usize {
        self.entries
            .iter()
            .filter(|e| e.valid && e.asid == asid)
            .count()
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for TlbEntry {
    fn save(&self, w: &mut Saver) {
        self.vpn.save(w);
        self.ppn.save(w);
        w.u16(self.asid);
        w.u64(self.last_use);
        w.u16(self.owner);
        for h in &self.history {
            w.u16(*h);
        }
        w.u8(self.hist_len);
        w.bool(self.valid);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.vpn.load(r)?;
        self.ppn.load(r)?;
        self.asid = r.u16()?;
        self.last_use = r.u64()?;
        self.owner = r.u16()?;
        for h in &mut self.history {
            *h = r.u16()?;
        }
        self.hist_len = r.u8()?;
        self.valid = r.bool()?;
        Ok(())
    }
}

impl Ckpt for Tlb {
    /// Geometry (`config`, `set_mask`) is rebuilt by the caller; only
    /// the entry array and counters are serialized.
    fn save(&self, w: &mut Saver) {
        self.entries.save(w);
        self.accesses.save(w);
        self.hits.save(w);
        self.fills.save(w);
        self.hit_depth.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.entries.load(r)?;
        self.accesses.load(r)?;
        self.hits.load(r)?;
        self.fills.load(r)?;
        self.hit_depth.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        // 8 entries, 4-way → 2 sets.
        Tlb::new(TlbConfig {
            entries: 8,
            ways: 4,
            ports: 4,
            mode: TlbMode::Blocking,
            mshrs: 32,
            ideal_latency: false,
        })
    }

    fn vpn(n: u64) -> Vpn {
        Vpn::new(n)
    }

    #[test]
    fn fill_then_hit() {
        let mut t = small();
        assert!(t.lookup(vpn(4), 0, 1).is_none());
        t.fill(vpn(4), Ppn::new(9), 2, 2);
        let hit = t.lookup(vpn(4), 5, 3).unwrap();
        assert_eq!(hit.ppn, Ppn::new(9));
        assert_eq!(t.accesses.get(), 2);
        assert_eq!(t.hits.get(), 1);
        assert_eq!(t.miss_rate(), 0.5);
    }

    #[test]
    fn lru_depth_reflects_recency() {
        let mut t = small();
        // Four pages in set 0 (even vpns with bit0 = 0 → set = vpn & 1).
        for (i, p) in [0u64, 2, 4, 6].iter().enumerate() {
            t.fill(vpn(*p), Ppn::new(*p), 0, i as u64 + 1);
        }
        // Page 0 is now LRU (depth 3); page 6 is MRU (depth 0).
        assert_eq!(t.lookup(vpn(6), 0, 10).unwrap().lru_depth, 0);
        assert_eq!(t.lookup(vpn(0), 0, 11).unwrap().lru_depth, 3);
        // After touching page 0 it is MRU.
        assert_eq!(t.lookup(vpn(0), 0, 12).unwrap().lru_depth, 0);
    }

    #[test]
    fn fill_evicts_lru_and_reports_owner() {
        let mut t = small();
        for (i, p) in [0u64, 2, 4, 6].iter().enumerate() {
            t.fill(vpn(*p), Ppn::new(*p), *p as u16, i as u64 + 1);
        }
        let victim = t.fill(vpn(8), Ppn::new(8), 7, 10).unwrap();
        assert_eq!(victim.vpn, vpn(0));
        assert_eq!(victim.owner, 0);
        assert!(!t.probe(vpn(0)));
        assert!(t.probe(vpn(8)));
    }

    #[test]
    fn warp_history_tracks_last_two_distinct() {
        let mut t = small();
        t.fill(vpn(2), Ppn::new(2), 10, 1);
        t.lookup(vpn(2), 11, 2);
        let h = t.lookup(vpn(2), 12, 3).unwrap();
        // Before warp 12's hit, history = [11, 10].
        assert_eq!(h.hist_len, 2);
        assert_eq!(h.history, [11, 10]);
        // Repeated hits by the same warp do not duplicate.
        let h2 = t.lookup(vpn(2), 12, 4).unwrap();
        assert_eq!(h2.history[0], 12);
        assert_eq!(h2.history[1], 11);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = small();
        t.fill(vpn(2), Ppn::new(2), 0, 1);
        let acc = t.accesses.get();
        assert!(t.probe(vpn(2)));
        assert!(!t.probe(vpn(4)));
        assert_eq!(t.accesses.get(), acc);
    }

    #[test]
    fn flush_empties() {
        let mut t = small();
        t.fill(vpn(2), Ppn::new(2), 0, 1);
        assert_eq!(t.occupancy(), 1);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(t.lookup(vpn(2), 0, 2).is_none());
    }

    #[test]
    fn access_penalty_tracks_cacti_sizing() {
        let mut cfg = TlbConfig::naive();
        assert_eq!(cfg.access_penalty(), 0);
        cfg.entries = 64;
        assert_eq!(cfg.access_penalty(), 0);
        cfg.entries = 256;
        assert_eq!(cfg.access_penalty(), 2);
        cfg.entries = 512;
        assert_eq!(cfg.access_penalty(), 4);
        assert_eq!(TlbConfig::ideal_large().access_penalty(), 0);
    }

    #[test]
    fn mode_capabilities() {
        assert!(!TlbMode::Blocking.hits_under_miss());
        assert!(TlbMode::HitUnderMiss.hits_under_miss());
        assert!(!TlbMode::HitUnderMiss.cache_overlap());
        assert!(TlbMode::HitUnderMissOverlap.cache_overlap());
    }

    #[test]
    fn asid_tags_isolate_tenants() {
        let mut t = small();
        t.fill_asid(1, vpn(2), Ppn::new(100), 0, 1);
        t.fill_asid(2, vpn(2), Ppn::new(200), 0, 2);
        // Same virtual page, two tenants, two live entries.
        assert_eq!(t.lookup_asid(1, vpn(2), 0, 3).unwrap().ppn, Ppn::new(100));
        assert_eq!(t.lookup_asid(2, vpn(2), 0, 4).unwrap().ppn, Ppn::new(200));
        assert!(t.lookup_asid(3, vpn(2), 0, 5).is_none());
        assert!(t.probe_asid(1, vpn(2)) && t.probe_asid(2, vpn(2)));
        assert!(!t.probe_asid(0, vpn(2)));
        // An ASID-scoped flush removes only that tenant's entries.
        t.flush_asid(1);
        assert!(!t.probe_asid(1, vpn(2)));
        assert_eq!(t.lookup_asid(2, vpn(2), 0, 6).unwrap().ppn, Ppn::new(200));
        assert_eq!(t.occupancy_asid(2), 1);
        assert_eq!(t.occupancy_asid(1), 0);
    }

    #[test]
    fn refill_same_page_has_no_victim() {
        let mut t = small();
        t.fill(vpn(2), Ppn::new(2), 0, 1);
        assert!(t.fill(vpn(2), Ppn::new(3), 1, 2).is_none());
        assert_eq!(t.lookup(vpn(2), 0, 3).unwrap().ppn, Ppn::new(3));
    }
}
