//! The per-shader-core memory management unit.
//!
//! One [`Mmu`] sits next to each shader core's L1 (Figure 1): the memory
//! unit coalesces a warp's accesses into unique cache lines *and unique
//! virtual pages*, presents the pages here, and overlaps the lookup with
//! L1 access (virtually-indexed physically-tagged caches). The MMU owns
//! the TLB, its MSHRs (one per warp thread), and the page-table walker,
//! and implements the paper's blocking and non-blocking semantics:
//!
//! * blocking TLB — while any walk is outstanding, no memory instruction
//!   may access the TLB (swapped-in warps with memory references stall);
//! * hit-under-miss — other warps' TLB hits proceed; further misses swap
//!   their warps out and queue behind the walker;
//! * cache overlap — a partially missing warp's hit pages return
//!   translations immediately so their L1 accesses launch under the walk.
//!
//! The [`MmuModel::Ideal`] variant translates instantly and is the
//! no-TLB baseline every figure normalizes against.

use crate::tlb::{Tlb, TlbConfig};
use crate::walker::{WalkDone, Walker, WalkerConfig};
use gmmu_mem::mshr::{MshrFile, MshrOutcome};
use gmmu_mem::MemPort;
use gmmu_sim::fault::{FaultInjectConfig, FaultInjector};
use gmmu_sim::metrics::{MetricEvent, Metrics, MetricsRegistry};
use gmmu_sim::stats::{Counter, Summary};
use gmmu_sim::trace::{TraceEvent, Tracer, TID_MMU};
use gmmu_sim::Cycle;
use gmmu_vm::{AddressSpace, Ppn, Vpn};
use std::collections::HashMap;

/// Which address-translation hardware a shader core has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuModel {
    /// Perfect translation at zero cost — the paper's baseline GPU
    /// "without TLBs" that all speedups are normalized to.
    Ideal,
    /// A real per-core TLB + page-table walker.
    Real {
        /// TLB geometry and non-blocking mode.
        tlb: TlbConfig,
        /// Walker microarchitecture.
        walker: WalkerConfig,
    },
}

impl gmmu_sim::ckpt::Ckpt for MmuModel {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        match self {
            MmuModel::Ideal => w.u8(0),
            MmuModel::Real { tlb, walker } => {
                w.u8(1);
                tlb.save(w);
                walker.save(w);
            }
        }
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        *self = match r.u8()? {
            0 => MmuModel::Ideal,
            1 => {
                let mut tlb = TlbConfig::default();
                tlb.load(r)?;
                let mut walker = WalkerConfig::serial();
                walker.load(r)?;
                MmuModel::Real { tlb, walker }
            }
            _ => return Err(gmmu_sim::ckpt::CkptError::Corrupt("unknown MMU model")),
        };
        Ok(())
    }
}

impl MmuModel {
    /// The naive Figure 2 design: 128-entry 3-port blocking TLB, one
    /// serial walker.
    pub fn naive() -> Self {
        MmuModel::Real {
            tlb: TlbConfig::naive(),
            walker: WalkerConfig::serial(),
        }
    }

    /// The fully augmented design (Section 6.3): 4 ports, hit-under-miss
    /// with cache overlap, coalesced walk scheduling.
    pub fn augmented() -> Self {
        MmuModel::Real {
            tlb: TlbConfig::augmented(),
            walker: WalkerConfig::coalesced(),
        }
    }

    /// The impractical ideal TLB of Figures 7/10 (512 entries, 32 ports,
    /// no latency penalty) with the coalesced walker.
    pub fn ideal_large_tlb() -> Self {
        MmuModel::Real {
            tlb: TlbConfig::ideal_large(),
            walker: WalkerConfig::coalesced(),
        }
    }

    /// True for [`MmuModel::Ideal`].
    pub fn is_ideal(&self) -> bool {
        matches!(self, MmuModel::Ideal)
    }
}

/// One page of a warp memory instruction presented for translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageReq {
    /// Virtual page (from the pre-TLB coalescer).
    pub vpn: Vpn,
    /// Home (static) warp of the threads referencing the page — recorded
    /// in TLB entry history/ownership for TCWS and the CPM. Under
    /// dynamic warp formation this differs from the requesting unit.
    pub warp: u16,
}

impl PageReq {
    /// Convenience constructor.
    pub fn new(vpn: Vpn, warp: u16) -> Self {
        Self { vpn, warp }
    }
}

/// One translated page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Virtual page.
    pub vpn: Vpn,
    /// Physical frame (4 KiB granular even for large pages).
    pub ppn: Ppn,
}

/// Per-hit scheduler information (consumed by TCWS and the CPM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// LRU depth of the entry before the hit (0 = MRU).
    pub lru_depth: u8,
    /// Previous warps that hit the entry, most recent first.
    pub history: [u16; crate::tlb::WARP_HISTORY],
    /// Valid prefix of `history`.
    pub hist_len: u8,
}

/// Reusable output buffer for [`Mmu::translate`] (hot path: avoids
/// per-instruction allocation).
#[derive(Debug, Clone, Default)]
pub struct TranslateBuf {
    /// Pages that hit, with their translations.
    pub hits: Vec<Translation>,
    /// Scheduler info parallel to `hits`.
    pub hit_info: Vec<HitInfo>,
    /// Pages that missed (walks queued).
    pub misses: Vec<Vpn>,
}

impl TranslateBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.hits.clear();
        self.hit_info.clear();
        self.misses.clear();
    }
}

/// Outcome of presenting a warp's coalesced pages to the MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateOutcome {
    /// Every page hit. Translations are usable at `ready_at`.
    AllHit {
        /// Cycle the lookup completes (ports + access penalty).
        ready_at: Cycle,
    },
    /// At least one page missed; walks are queued and the warp must
    /// sleep until [`MmuEvent::Wake`] events arrive for it. Pages that
    /// hit are in the buffer — usable at `ready_at`, but only if the TLB
    /// mode supports cache overlap.
    Miss {
        /// Cycle the lookup (for the hit pages) completes.
        ready_at: Cycle,
        /// Number of pages that missed.
        misses: usize,
    },
    /// The MMU cannot accept the request this cycle (blocking TLB with
    /// an outstanding walk, or MSHRs exhausted). Retry at `retry_at`.
    Reject {
        /// Earliest cycle worth retrying.
        retry_at: Cycle,
    },
}

/// Events the shader core drains from the MMU each cycle and forwards to
/// its scheduler policy / sleeping warps. Every event carries the ASID
/// of the address space it belongs to (0 in single-tenant runs) so the
/// core can attribute wakes, faults, and squashes to the right tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuEvent {
    /// A TLB fill displaced an entry (TCWS inserts it into the owner's
    /// victim tag array).
    Evicted {
        /// Address space of the displaced entry.
        asid: u16,
        /// Displaced page.
        vpn: Vpn,
        /// Warp that allocated the displaced entry.
        owner: u16,
    },
    /// A page walk finished: its translation is delivered directly to
    /// the waiting warp (hardware forwards the fill to the memory
    /// unit's MSHR, so the access proceeds even if the TLB entry is
    /// evicted before the warp next runs).
    Wake {
        /// Address space the translation belongs to.
        asid: u16,
        /// Warp to wake.
        warp: u16,
        /// Page whose translation arrived.
        vpn: Vpn,
        /// The translation (4 KiB granular).
        ppn: Ppn,
    },
    /// A walk found the page unmapped (page fault — the paper interrupts
    /// a CPU to service it). One event is emitted *per waiting warp*, so
    /// coalesced waiters all learn about the fault; the core parks them
    /// until the modeled CPU handler maps the page (or aborts the run if
    /// demand paging is disabled).
    Fault {
        /// Address space whose table lacks the page.
        asid: u16,
        /// Faulting page.
        vpn: Vpn,
        /// Waiting warp (scheduling unit) to park.
        warp: u16,
    },
    /// An in-flight walk was squashed by a TLB shootdown before its fill
    /// applied. One event per waiting warp; the core retries the access
    /// after a bounded backoff, re-walking against the updated table.
    Squashed {
        /// Address space whose walk was squashed.
        asid: u16,
        /// Waiting warp (scheduling unit) to retry.
        warp: u16,
        /// Page whose walk was squashed.
        vpn: Vpn,
    },
}

/// The per-core MMU.
///
/// Drive it with [`Mmu::advance`] once per core cycle (before issuing),
/// then call [`Mmu::translate`] for each memory instruction and drain
/// [`Mmu::events`].
///
/// # Examples
///
/// ```
/// use gmmu_core::mmu::{Mmu, MmuModel, TranslateBuf, TranslateOutcome};
/// use gmmu_mem::{MemConfig, MemorySystem};
/// use gmmu_vm::{AddressSpace, PageSize, SpaceConfig};
///
/// let mut space = AddressSpace::new(SpaceConfig::default());
/// let r = space.map_region("d", 1 << 20, PageSize::Base4K)?;
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let mut mmu = Mmu::new(MmuModel::naive());
/// let mut buf = TranslateBuf::new();
///
/// mmu.advance(0, &mut mem, &space);
/// let page = gmmu_core::mmu::PageReq::new(r.base.vpn(), 0);
/// let out = mmu.translate(0, 0, &[page], &space, &mut buf);
/// assert!(matches!(out, TranslateOutcome::Miss { misses: 1, .. }));
/// # Ok::<(), gmmu_vm::VmError>(())
/// ```
#[derive(Debug)]
pub struct Mmu {
    model: MmuModel,
    tlb: Option<Tlb>,
    walker: Option<Walker>,
    mshrs: MshrFile,
    /// Warps waiting on each in-flight page, keyed by
    /// [`gmmu_mem::mshr::tenant_key`] so pages never alias across ASIDs.
    waiters: HashMap<u64, Vec<u16>>,
    /// Retired waiter lists, recycled by the next miss so steady-state
    /// fills never allocate. Bounded by the MSHR count. Not serialized —
    /// contents are dead (always cleared before reuse).
    waiter_pool: Vec<Vec<u16>>,
    /// Finished walks not yet applied (completion in the future).
    pending_fills: Vec<WalkDone>,
    done_scratch: Vec<WalkDone>,
    /// Events for the shader core to drain.
    events: Vec<MmuEvent>,
    /// Lookup-port reservation.
    lookup_next_free: Cycle,
    /// Monotonic stamp for TLB LRU.
    stamp: u64,
    /// Deterministic fault injector (`None` = no perturbation at all).
    inject: Option<FaultInjector>,
    /// ASID-tagged TLB entries (the default). When `false` the MMU
    /// models a legacy untagged TLB: entries implicitly belong to
    /// `current_asid`, and presenting a different tenant flushes the
    /// whole TLB (the flush-on-switch fallback the figures compare
    /// against).
    tagged: bool,
    /// Tenant the untagged TLB's entries currently belong to.
    current_asid: u16,
    /// Telemetry channel. Every lifecycle event (lookups, misses, walk
    /// levels, stage attribution, fills) originates inside this MMU, so
    /// the channel lives here; the engine drains it into the observer's
    /// sink once per cycle. Transient like `done_scratch`: buffers are
    /// empty at checkpoint boundaries and are not serialized.
    metrics: Metrics,
    /// Requests rejected (blocking / MSHR-full).
    pub rejects: Counter,
    /// Per-miss resolution latency: miss detection → TLB fill applied
    /// (the Figure 4 "cycles per TLB miss").
    pub miss_latency: Summary,
    /// Page faults observed.
    pub faults: Counter,
    /// TLB shootdowns observed (epoch bumps serviced).
    pub shootdowns: Counter,
    /// In-flight walks squashed by shootdowns.
    pub squashed_walks: Counter,
    /// Whole-TLB flushes taken by the untagged fallback on tenant switch.
    pub switch_flushes: Counter,
}

/// Composite key for MSHRs and waiter lists: identity for ASID 0.
#[inline]
fn tkey(asid: u16, vpn: Vpn) -> u64 {
    gmmu_mem::mshr::tenant_key(asid, vpn.raw())
}

impl Mmu {
    /// Creates an MMU of the given model.
    pub fn new(model: MmuModel) -> Self {
        let (tlb, walker, mshrs) = match model {
            MmuModel::Ideal => (None, None, MshrFile::new(1)),
            MmuModel::Real { tlb, walker } => (
                Some(Tlb::new(tlb)),
                Some(Walker::new(walker)),
                MshrFile::new(tlb.mshrs),
            ),
        };
        // Waiter lists exist only for in-flight walks, so occupancy is
        // bounded by the MSHR capacity; double it so tombstone-driven
        // rehashes stay in place instead of allocating (see
        // `MshrFile::new`).
        let waiters = HashMap::with_capacity(2 * mshrs.capacity());
        Self {
            model,
            tlb,
            walker,
            mshrs,
            waiters,
            waiter_pool: Vec::new(),
            pending_fills: Vec::new(),
            done_scratch: Vec::new(),
            events: Vec::new(),
            lookup_next_free: 0,
            stamp: 0,
            inject: None,
            tagged: true,
            current_asid: 0,
            metrics: Metrics::Off,
            rejects: Counter::new(),
            miss_latency: Summary::new(),
            faults: Counter::new(),
            shootdowns: Counter::new(),
            squashed_walks: Counter::new(),
            switch_flushes: Counter::new(),
        }
    }

    /// Selects ASID-tagged TLB entries (`true`, the default) or the
    /// flush-on-switch fallback (`false`): an untagged TLB whose entire
    /// contents are flushed whenever a different tenant presents a
    /// request. Single-tenant runs never switch, so both settings are
    /// bit-identical there.
    pub fn set_tagging(&mut self, tagged: bool) {
        self.tagged = tagged;
    }

    /// Whether TLB entries are ASID-tagged.
    pub fn tagged(&self) -> bool {
        self.tagged
    }

    /// Arms the walker's per-ASID fairness scheduler (no-op for models
    /// without a walker or with `n_asids <= 1`).
    pub fn set_walker_fairness(&mut self, n_asids: usize, tokens: u32, max_age: u64) {
        if let Some(walker) = self.walker.as_mut() {
            walker.set_fairness(n_asids, tokens, max_age);
        }
    }

    /// Arms (or disarms, with `None`) deterministic fault injection:
    /// delayed walk fills and transient rejections. With `None` the MMU
    /// behaves bit-identically to a build without the harness.
    pub fn set_injection(&mut self, cfg: Option<FaultInjectConfig>) {
        self.inject = cfg.map(FaultInjector::new);
    }

    /// Enables (or disables) telemetry staging: when on, lifecycle
    /// events accumulate in a core-local buffer the engine drains with
    /// [`Mmu::drain_metrics`] once per cycle. Off by default; off means
    /// the event closures are never evaluated.
    pub fn set_metrics(&mut self, enabled: bool) {
        self.metrics = if enabled {
            Metrics::staging()
        } else {
            Metrics::Off
        };
    }

    /// Drains staged telemetry events into `dst` (the observer's sink).
    pub fn drain_metrics(&mut self, dst: &mut Metrics) {
        dst.absorb(&mut self.metrics);
    }

    /// Registers this MMU's instruments (TLB, walker, MSHRs, fault
    /// counters) under `prefix` in deterministic order.
    pub fn register_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        if let Some(tlb) = &self.tlb {
            tlb.register_metrics(&format!("{prefix}.tlb"), reg);
        }
        if let Some(walker) = &self.walker {
            walker.register_metrics(&format!("{prefix}.walker"), reg);
        }
        self.mshrs.register_metrics(&format!("{prefix}.mshr"), reg);
        reg.counter(format!("{prefix}.rejects"), self.rejects.get());
        reg.counter(format!("{prefix}.faults"), self.faults.get());
        reg.counter(format!("{prefix}.shootdowns"), self.shootdowns.get());
        reg.counter(
            format!("{prefix}.squashed_walks"),
            self.squashed_walks.get(),
        );
        reg.counter(
            format!("{prefix}.switch_flushes"),
            self.switch_flushes.get(),
        );
        reg.counter(
            format!("{prefix}.miss_latency.count"),
            self.miss_latency.count(),
        );
        reg.gauge(
            format!("{prefix}.miss_latency.mean"),
            self.miss_latency.mean(),
        );
    }

    /// The model this MMU implements.
    pub fn model(&self) -> MmuModel {
        self.model
    }

    /// The TLB, when the model has one.
    pub fn tlb(&self) -> Option<&Tlb> {
        self.tlb.as_ref()
    }

    /// The walker, when the model has one.
    pub fn walker(&self) -> Option<&Walker> {
        self.walker.as_ref()
    }

    /// Whether cache overlap is enabled (hit pages of a missing warp may
    /// access the L1 immediately).
    pub fn cache_overlap(&self) -> bool {
        match self.model {
            MmuModel::Ideal => true,
            MmuModel::Real { tlb, .. } => tlb.mode.cache_overlap(),
        }
    }

    /// Walks in flight (queued or awaiting fill).
    pub fn outstanding_walks(&self) -> usize {
        self.mshrs.len()
    }

    /// True when [`Mmu::advance`] would be a no-op this cycle: no
    /// finished walk is waiting to fill and nothing is queued at the
    /// walker. Walks only enter via [`Mmu::translate`] (an issue, hence
    /// a non-quiet core cycle), so an idle MMU stays idle until the core
    /// does something — which is what lets the core keep its cached
    /// next-event value across quiet ticks.
    pub fn is_idle(&self) -> bool {
        self.pending_fills.is_empty() && self.walker.as_ref().is_none_or(|w| w.queue_len() == 0)
    }

    /// Services the walker and applies due TLB fills. Call once per core
    /// cycle before translating.
    pub fn advance(&mut self, now: Cycle, mem: &mut dyn MemPort, space: &AddressSpace) {
        self.advance_tenants(now, mem, &[space], &mut Tracer::Off, 0);
    }

    /// [`Mmu::advance`] that also emits `tlb_miss` spans (miss enqueue →
    /// fill applied, track `TID_MMU`) and per-lane `page_walk` spans
    /// under core `pid` when tracing is on.
    pub fn advance_traced(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        tracer: &mut Tracer,
        pid: u32,
    ) {
        self.advance_tenants(now, mem, &[space], tracer, pid);
    }

    /// The multi-tenant [`Mmu::advance_traced`]: each in-flight walk is
    /// resolved against `spaces[walk.asid]`. Single-space callers pass a
    /// one-element slice.
    pub fn advance_tenants(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        spaces: &[&AddressSpace],
        tracer: &mut Tracer,
        pid: u32,
    ) {
        let Some(walker) = self.walker.as_mut() else {
            return;
        };
        self.done_scratch.clear();
        walker.advance_tenants(
            now,
            mem,
            spaces,
            &mut self.done_scratch,
            tracer,
            &mut self.metrics,
            pid,
        );
        for mut done in self.done_scratch.drain(..) {
            if let Some(inj) = &self.inject {
                done.complete += inj.walk_delay_t(done.asid, done.vpn.raw(), done.enqueued);
            }
            self.mshrs
                .set_completion(tkey(done.asid, done.vpn), done.complete);
            self.pending_fills.push(done);
        }
        // Apply fills whose data has returned.
        let mut i = 0;
        while i < self.pending_fills.len() {
            if self.pending_fills[i].complete <= now {
                let done = self.pending_fills.swap_remove(i);
                self.apply_fill(now, done, tracer, pid);
            } else {
                i += 1;
            }
        }
    }

    fn apply_fill(&mut self, now: Cycle, done: WalkDone, tracer: &mut Tracer, pid: u32) {
        self.miss_latency.record(done.complete - done.enqueued);
        tracer.record(|| {
            TraceEvent::span(
                "tlb_miss",
                "mmu",
                pid,
                TID_MMU,
                done.enqueued,
                done.complete - done.enqueued,
            )
            .arg("vpn", done.vpn.raw())
            .arg("warp", done.warp as u64)
        });
        self.mshrs.release(tkey(done.asid, done.vpn));
        let waiters = self
            .waiters
            .remove(&tkey(done.asid, done.vpn))
            .unwrap_or_default();
        // Stage attribution: queueing before a lane picked the walk up,
        // then active walking (memory references plus injected delays,
        // which `advance_tenants` folded into `complete`). The two stages
        // sum exactly to the `miss_latency` sample recorded above.
        self.metrics.record(|| MetricEvent::WalkStage {
            asid: done.asid,
            queue: done.started - done.enqueued,
            active: done.complete - done.started,
        });
        self.metrics.record(|| MetricEvent::Fill {
            waiters: waiters.len() as u64,
        });
        let _ = now;
        match done.translation {
            Some((ppn, _size)) => {
                let owner = done.warp;
                self.stamp += 1;
                let tlb = self.tlb.as_mut().expect("fills only occur with a TLB");
                // Untagged fallback: a fill for a tenant other than the
                // one the TLB currently holds must not enter it — the
                // translation still reaches its waiters directly (the
                // MSHR forwards it), exactly like a fill whose entry is
                // evicted before the warp next runs.
                if self.tagged || done.asid == self.current_asid {
                    let fill_tag = if self.tagged { done.asid } else { 0 };
                    if let Some(victim) = tlb.fill_asid(fill_tag, done.vpn, ppn, owner, self.stamp)
                    {
                        self.events.push(MmuEvent::Evicted {
                            asid: if self.tagged {
                                victim.asid
                            } else {
                                self.current_asid
                            },
                            vpn: victim.vpn,
                            owner: victim.owner,
                        });
                    }
                }
                for &warp in &waiters {
                    self.events.push(MmuEvent::Wake {
                        asid: done.asid,
                        warp,
                        vpn: done.vpn,
                        ppn,
                    });
                }
            }
            None => {
                self.faults.inc();
                if waiters.is_empty() {
                    // Defensive: a faulting walk always has at least its
                    // original requester waiting, but never drop a fault.
                    self.events.push(MmuEvent::Fault {
                        asid: done.asid,
                        vpn: done.vpn,
                        warp: done.warp,
                    });
                } else {
                    // One event per coalesced waiter — a single
                    // unattributed fault would leave merged warps asleep
                    // forever.
                    for &warp in &waiters {
                        self.events.push(MmuEvent::Fault {
                            asid: done.asid,
                            vpn: done.vpn,
                            warp,
                        });
                    }
                }
            }
        }
        self.recycle_waiters(waiters);
    }

    /// Returns a drained waiter list to the pool for the next miss.
    fn recycle_waiters(&mut self, mut list: Vec<u16>) {
        list.clear();
        self.waiter_pool.push(list);
    }

    /// Drains pending events.
    pub fn events(&mut self) -> std::vec::Drain<'_, MmuEvent> {
        self.events.drain(..)
    }

    /// The earliest future cycle at which [`Mmu::advance`] will do
    /// something: apply a finished walk's fill, or start a queued walk
    /// on a freed walker lane. Returns `None` when the MMU is quiescent
    /// (ideal model, or no walks in flight). Used by the event-skipping
    /// engine to bound how far the clock may jump.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut fold = |c: Cycle| next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        for fill in &self.pending_fills {
            fold(fill.complete);
        }
        if let Some(walker) = self.walker.as_ref() {
            if let Some(c) = walker.next_event_at() {
                fold(c);
            }
        }
        next
    }

    /// Presents a warp's coalesced pages for translation at cycle `now`.
    ///
    /// `pages` must be the deduplicated virtual pages of one memory
    /// instruction (the pre-TLB coalescer's output). Results land in
    /// `buf`; the return value says how to proceed.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is empty, or (for the ideal model) if a page is
    /// unmapped.
    pub fn translate(
        &mut self,
        now: Cycle,
        requester: u16,
        pages: &[PageReq],
        space: &AddressSpace,
        buf: &mut TranslateBuf,
    ) -> TranslateOutcome {
        self.translate_tenant(now, requester, 0, pages, space, buf)
    }

    /// [`Mmu::translate`] for tenant `asid`: lookups, fills, MSHRs, and
    /// walks are all tagged with the ASID, and `space` must be that
    /// tenant's address space. With tagging disabled, presenting an ASID
    /// other than the TLB's current tenant flushes the whole TLB first
    /// (the flush-on-switch fallback).
    pub fn translate_tenant(
        &mut self,
        now: Cycle,
        requester: u16,
        asid: u16,
        pages: &[PageReq],
        space: &AddressSpace,
        buf: &mut TranslateBuf,
    ) -> TranslateOutcome {
        assert!(!pages.is_empty(), "translate needs at least one page");
        buf.clear();
        if !self.tagged && asid != self.current_asid {
            self.switch_flushes.inc();
            self.current_asid = asid;
            if let Some(tlb) = self.tlb.as_mut() {
                tlb.flush();
            }
        }
        // Under tagging entries carry their true ASID; untagged entries
        // all carry tag 0 and implicitly belong to `current_asid`.
        let tag = if self.tagged { asid } else { 0 };
        let MmuModel::Real { tlb: tlb_cfg, .. } = self.model else {
            // Ideal: perfect translation, no cost.
            for req in pages {
                let (pa, _) = space
                    .translate(req.vpn.base())
                    .expect("ideal MMU requires pre-mapped pages");
                buf.hits.push(Translation {
                    vpn: req.vpn,
                    ppn: pa.ppn(),
                });
                buf.hit_info.push(HitInfo {
                    lru_depth: 0,
                    history: [0; crate::tlb::WARP_HISTORY],
                    hist_len: 0,
                });
            }
            return TranslateOutcome::AllHit { ready_at: now };
        };

        // Injected transient queue-full rejection: the request bounces
        // exactly as if an internal buffer were momentarily full. Drawn
        // from the tenant's own stream (identical to the legacy stream
        // for ASID 0).
        if let Some(inj) = &self.inject {
            if inj.reject_t(asid, now, requester as u64) {
                self.rejects.inc();
                return TranslateOutcome::Reject { retry_at: now + 8 };
            }
        }

        // Blocking TLB: any outstanding walk blocks all memory
        // instructions (Section 6.2).
        if !tlb_cfg.mode.hits_under_miss() && !self.mshrs.is_empty() {
            self.rejects.inc();
            let earliest = self.mshrs.earliest_completion();
            let retry_at = if earliest == gmmu_sim::NEVER {
                now + 8
            } else {
                earliest.max(now + 1)
            };
            return TranslateOutcome::Reject { retry_at };
        }

        // If the MSHR file is completely full and this request needs a
        // fresh walk, nothing can be registered: reject (probe-only, so
        // no side effects). Partially free files accept what they can —
        // the remaining pages stay pending and re-present on replay,
        // like hardware splitting a wide request.
        let tlb = self.tlb.as_ref().expect("real model has a TLB");
        if self.mshrs.len() == self.mshrs.capacity()
            && pages.iter().any(|p| {
                !tlb.probe_asid(tag, p.vpn) && self.mshrs.lookup(tkey(asid, p.vpn)).is_none()
            })
        {
            self.rejects.inc();
            let earliest = self.mshrs.earliest_completion();
            let retry_at = if earliest == gmmu_sim::NEVER {
                now + 8
            } else {
                earliest.max(now + 1)
            };
            return TranslateOutcome::Reject { retry_at };
        }

        // Port arbitration: `ports` lookups per cycle, shared by all
        // warps; plus the CACTI access penalty for oversized TLBs.
        let start = now.max(self.lookup_next_free);
        let lookup_cycles = (pages.len() as u64).div_ceil(tlb_cfg.ports as u64);
        self.lookup_next_free = start + lookup_cycles;
        let ready_at = start + (lookup_cycles - 1) + tlb_cfg.access_penalty();
        // One lookup-latency sample per accepted probe (hit or miss):
        // port-arbitration wait plus the access penalty.
        self.metrics.record(|| MetricEvent::Lookup(ready_at - now));

        let tlb = self.tlb.as_mut().expect("real model has a TLB");
        for req in pages {
            self.stamp += 1;
            match tlb.lookup_asid(tag, req.vpn, req.warp, self.stamp) {
                Some(hit) => {
                    buf.hits.push(Translation {
                        vpn: req.vpn,
                        ppn: hit.ppn,
                    });
                    buf.hit_info.push(HitInfo {
                        lru_depth: hit.lru_depth,
                        history: hit.history,
                        hist_len: hit.hist_len,
                    });
                }
                None => buf.misses.push(req.vpn),
            }
        }
        if buf.misses.is_empty() {
            return TranslateOutcome::AllHit { ready_at };
        }
        let mut registered = 0usize;
        for &vpn in &buf.misses {
            let home = pages
                .iter()
                .find(|p| p.vpn == vpn)
                .expect("miss came from the request")
                .warp;
            match self.mshrs.allocate(tkey(asid, vpn)) {
                MshrOutcome::Allocated => {
                    self.walker
                        .as_mut()
                        .expect("real model has a walker")
                        .enqueue_asid(asid, vpn, home, now);
                    let mut list = self.waiter_pool.pop().unwrap_or_default();
                    list.push(requester);
                    self.waiters.insert(tkey(asid, vpn), list);
                    self.metrics.record(|| MetricEvent::Miss {
                        asid,
                        vpn: vpn.raw(),
                    });
                    registered += 1;
                }
                MshrOutcome::Merged(_) => {
                    self.waiters
                        .entry(tkey(asid, vpn))
                        .or_default()
                        .push(requester);
                    self.metrics.record(|| MetricEvent::Miss {
                        asid,
                        vpn: vpn.raw(),
                    });
                    registered += 1;
                }
                // No free MSHR for this page: it stays pending and is
                // re-presented when the registered subset wakes the
                // requester.
                MshrOutcome::Full => {}
            }
        }
        debug_assert!(registered > 0, "full-file case rejected above");
        TranslateOutcome::Miss {
            ready_at,
            misses: registered,
        }
    }

    /// Flushes the TLB (shootdown from the launching CPU, Section 6.2).
    /// In-flight walks complete and refill naturally, mirroring hardware.
    pub fn flush_tlb(&mut self) {
        if let Some(tlb) = self.tlb.as_mut() {
            tlb.flush();
        }
    }

    /// Services a full TLB shootdown (the owning CPU changed the page
    /// table): flushes the TLB and the walker's page-walk cache, squashes
    /// every in-flight walk — queued requests *and* fills computed
    /// against the old table but not yet applied — releases their MSHRs,
    /// and emits one [`MmuEvent::Squashed`] per waiting warp so the core
    /// retries the access with bounded backoff against the new table.
    pub fn shootdown(&mut self, now: Cycle) {
        let _ = now;
        self.shootdowns.inc();
        self.flush_tlb();
        let Some(walker) = self.walker.as_mut() else {
            return;
        };
        let mut squashed: Vec<(u16, Vpn)> = walker
            .shootdown()
            .into_iter()
            .map(|r| (r.asid, r.vpn))
            .collect();
        squashed.extend(self.pending_fills.drain(..).map(|d| (d.asid, d.vpn)));
        self.squash(squashed);
    }

    /// ASID-scoped shootdown (the tagged design's whole point): flushes
    /// only `asid`'s TLB entries and squashes only its in-flight walks,
    /// leaving co-tenants' entries, queued walks, and pending fills
    /// untouched. On single-tenant state `shootdown_asid(now, 0)` is
    /// byte-identical to the full [`Mmu::shootdown`]. With tagging
    /// disabled the TLB cannot discriminate, so the whole TLB is flushed
    /// whenever the victim is the tenant it currently holds (other
    /// tenants have no entries in it by construction).
    pub fn shootdown_asid(&mut self, now: Cycle, asid: u16) {
        let _ = now;
        self.shootdowns.inc();
        if let Some(tlb) = self.tlb.as_mut() {
            if self.tagged {
                tlb.flush_asid(asid);
            } else if self.current_asid == asid {
                tlb.flush();
            }
        }
        let Some(walker) = self.walker.as_mut() else {
            return;
        };
        let mut squashed: Vec<(u16, Vpn)> = walker
            .shootdown_asid(asid)
            .into_iter()
            .map(|r| (r.asid, r.vpn))
            .collect();
        let mut i = 0;
        while i < self.pending_fills.len() {
            if self.pending_fills[i].asid == asid {
                let d = self.pending_fills.remove(i);
                squashed.push((d.asid, d.vpn));
            } else {
                i += 1;
            }
        }
        self.squash(squashed);
    }

    fn squash(&mut self, squashed: Vec<(u16, Vpn)>) {
        for (asid, vpn) in squashed {
            self.squashed_walks.inc();
            self.mshrs.release(tkey(asid, vpn));
            if let Some(list) = self.waiters.remove(&tkey(asid, vpn)) {
                for &warp in &list {
                    self.events.push(MmuEvent::Squashed { asid, warp, vpn });
                }
                self.recycle_waiters(list);
            }
        }
    }

    /// In-flight walks (queued, walking, or awaiting fill) belonging to
    /// `asid` — the watchdog's per-tenant diagnostic.
    pub fn outstanding_walks_asid(&self, asid: u16) -> usize {
        self.mshrs.len_asid(asid)
    }

    /// Queued-but-unstarted walks belonging to `asid`.
    pub fn queued_walks_asid(&self, asid: u16) -> usize {
        self.walker.as_ref().map_or(0, |w| w.queue_len_asid(asid))
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for MmuEvent {
    fn save(&self, w: &mut Saver) {
        match *self {
            MmuEvent::Evicted { asid, vpn, owner } => {
                w.u8(0);
                w.u16(asid);
                vpn.save(w);
                w.u16(owner);
            }
            MmuEvent::Wake {
                asid,
                warp,
                vpn,
                ppn,
            } => {
                w.u8(1);
                w.u16(asid);
                w.u16(warp);
                vpn.save(w);
                ppn.save(w);
            }
            MmuEvent::Fault { asid, vpn, warp } => {
                w.u8(2);
                w.u16(asid);
                vpn.save(w);
                w.u16(warp);
            }
            MmuEvent::Squashed { asid, warp, vpn } => {
                w.u8(3);
                w.u16(asid);
                w.u16(warp);
                vpn.save(w);
            }
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let mut vpn = Vpn::default();
        let mut ppn = Ppn::default();
        *self = match r.u8()? {
            0 => {
                let asid = r.u16()?;
                vpn.load(r)?;
                let owner = r.u16()?;
                MmuEvent::Evicted { asid, vpn, owner }
            }
            1 => {
                let asid = r.u16()?;
                let warp = r.u16()?;
                vpn.load(r)?;
                ppn.load(r)?;
                MmuEvent::Wake {
                    asid,
                    warp,
                    vpn,
                    ppn,
                }
            }
            2 => {
                let asid = r.u16()?;
                vpn.load(r)?;
                let warp = r.u16()?;
                MmuEvent::Fault { asid, vpn, warp }
            }
            3 => {
                let asid = r.u16()?;
                let warp = r.u16()?;
                vpn.load(r)?;
                MmuEvent::Squashed { asid, warp, vpn }
            }
            _ => return Err(CkptError::Corrupt("unknown MMU event tag")),
        };
        Ok(())
    }
}

impl Ckpt for Mmu {
    /// The model (and whether a TLB/walker exist) is configuration; the
    /// waiter map is serialized sorted by page so `HashMap` iteration
    /// order never leaks into the byte stream. `done_scratch` is
    /// transient within one `advance` call and is reset instead of
    /// saved. The fault injector is pure (a stateless function of its
    /// seed), so only the surrounding configuration carries it.
    fn save(&self, w: &mut Saver) {
        if let Some(tlb) = &self.tlb {
            tlb.save(w);
        }
        if let Some(walker) = &self.walker {
            walker.save(w);
        }
        self.mshrs.save(w);
        let mut waiters: Vec<(u64, Vec<u16>)> =
            self.waiters.iter().map(|(&k, v)| (k, v.clone())).collect();
        waiters.sort_unstable_by_key(|(k, _)| *k);
        waiters.save(w);
        self.pending_fills.save(w);
        w.usize(self.events.len());
        for e in &self.events {
            e.save(w);
        }
        w.u64(self.lookup_next_free);
        w.u64(self.stamp);
        w.u16(self.current_asid);
        self.rejects.save(w);
        self.miss_latency.save(w);
        self.faults.save(w);
        self.shootdowns.save(w);
        self.squashed_walks.save(w);
        self.switch_flushes.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        if let Some(tlb) = &mut self.tlb {
            tlb.load(r)?;
        }
        if let Some(walker) = &mut self.walker {
            walker.load(r)?;
        }
        self.mshrs.load(r)?;
        let mut waiters: Vec<(u64, Vec<u16>)> = Vec::new();
        waiters.load(r)?;
        self.waiters = waiters.into_iter().collect();
        self.pending_fills.load(r)?;
        let n_events = r.usize()?;
        self.events.clear();
        for _ in 0..n_events {
            let mut e = MmuEvent::Fault {
                asid: 0,
                vpn: Vpn::default(),
                warp: 0,
            };
            e.load(r)?;
            self.events.push(e);
        }
        self.done_scratch.clear();
        self.lookup_next_free = r.u64()?;
        self.stamp = r.u64()?;
        self.current_asid = r.u16()?;
        self.rejects.load(r)?;
        self.miss_latency.load(r)?;
        self.faults.load(r)?;
        self.shootdowns.load(r)?;
        self.squashed_walks.load(r)?;
        self.switch_flushes.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::TlbMode;
    use gmmu_mem::{MemConfig, MemorySystem};
    use gmmu_vm::{PageSize, SpaceConfig};

    struct Rig {
        space: AddressSpace,
        mem: MemorySystem,
        mmu: Mmu,
        buf: TranslateBuf,
        base: Vpn,
    }

    fn rig(model: MmuModel) -> Rig {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let r = space.map_region("d", 4 << 20, PageSize::Base4K).unwrap();
        Rig {
            base: r.base.vpn(),
            space,
            mem: MemorySystem::new(MemConfig::default()),
            mmu: Mmu::new(model),
            buf: TranslateBuf::new(),
        }
    }

    fn page(r: &Rig, i: u64) -> Vpn {
        Vpn::new(r.base.raw() + i)
    }

    fn pr(vpn: Vpn, warp: u16) -> PageReq {
        PageReq::new(vpn, warp)
    }

    /// Runs the MMU forward until all outstanding walks have filled.
    fn settle(r: &mut Rig, mut now: Cycle) -> (Cycle, Vec<MmuEvent>) {
        let mut events = Vec::new();
        for _ in 0..1_000_000 {
            r.mmu.advance(now, &mut r.mem, &r.space);
            events.extend(r.mmu.events());
            if r.mmu.outstanding_walks() == 0 {
                return (now, events);
            }
            now += 1;
        }
        panic!("walks never completed");
    }

    #[test]
    fn ideal_model_always_hits_instantly() {
        let mut r = rig(MmuModel::Ideal);
        let pages = [pr(page(&r, 0), 0), pr(page(&r, 1), 0)];
        let out = r.mmu.translate(5, 0, &pages, &r.space, &mut r.buf);
        assert_eq!(out, TranslateOutcome::AllHit { ready_at: 5 });
        assert_eq!(r.buf.hits.len(), 2);
        let expect = r.space.translate(pages[1].vpn.base()).unwrap().0.ppn();
        assert_eq!(r.buf.hits[1].ppn, expect);
    }

    #[test]
    fn miss_then_wake_then_hit() {
        let mut r = rig(MmuModel::naive());
        let p = page(&r, 3);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let out = r.mmu.translate(0, 7, &[pr(p, 7)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { misses: 1, .. }));
        let (now, events) = settle(&mut r, 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, MmuEvent::Wake { warp: 7, vpn, .. } if *vpn == p)));
        // Replay hits.
        let out = r.mmu.translate(now, 7, &[pr(p, 7)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::AllHit { .. }));
        assert_eq!(r.mmu.miss_latency.count(), 1);
        assert!(r.mmu.miss_latency.mean() > 0.0);
    }

    #[test]
    fn blocking_tlb_rejects_while_walk_outstanding() {
        let mut r = rig(MmuModel::naive());
        r.mmu.advance(0, &mut r.mem, &r.space);
        let p0 = page(&r, 0);
        let p1 = page(&r, 1);
        let _ = r.mmu.translate(0, 0, &[pr(p0, 0)], &r.space, &mut r.buf);
        // A different warp's access — even one that would hit — is
        // rejected while the walk is outstanding.
        let out = r.mmu.translate(1, 1, &[pr(p1, 1)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Reject { .. }));
        assert_eq!(r.mmu.rejects.get(), 1);
    }

    #[test]
    fn hit_under_miss_allows_other_warps() {
        let model = MmuModel::Real {
            tlb: TlbConfig {
                mode: TlbMode::HitUnderMiss,
                ..TlbConfig::naive()
            },
            walker: WalkerConfig::serial(),
        };
        let mut r = rig(model);
        // Warm page 1 into the TLB.
        let p1 = page(&r, 1);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r.mmu.translate(0, 0, &[pr(p1, 0)], &r.space, &mut r.buf);
        let (now, _) = settle(&mut r, 1);
        // Warp 0 misses on page 2; warp 1 hits page 1 under that miss.
        let p2 = page(&r, 2);
        let _ = r.mmu.translate(now, 0, &[pr(p2, 0)], &r.space, &mut r.buf);
        let out = r
            .mmu
            .translate(now + 1, 1, &[pr(p1, 1)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::AllHit { .. }));
        // A second miss is also accepted (queued behind the walker).
        let p3 = page(&r, 3);
        let out = r
            .mmu
            .translate(now + 2, 2, &[pr(p3, 2)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { .. }));
    }

    #[test]
    fn same_page_misses_merge_in_mshrs() {
        let model = MmuModel::Real {
            tlb: TlbConfig {
                mode: TlbMode::HitUnderMiss,
                ..TlbConfig::naive()
            },
            walker: WalkerConfig::serial(),
        };
        let mut r = rig(model);
        let p = page(&r, 5);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r.mmu.translate(0, 0, &[pr(p, 0)], &r.space, &mut r.buf);
        let _ = r.mmu.translate(0, 1, &[pr(p, 1)], &r.space, &mut r.buf);
        assert_eq!(r.mmu.outstanding_walks(), 1);
        // Only one walk ran, but both warps wake.
        let (_, events) = settle(&mut r, 1);
        let wakes: Vec<u16> = events
            .iter()
            .filter_map(|e| match e {
                MmuEvent::Wake { warp, .. } => Some(*warp),
                _ => None,
            })
            .collect();
        assert_eq!(wakes.len(), 2);
        assert!(wakes.contains(&0) && wakes.contains(&1));
        assert_eq!(r.mmu.walker().unwrap().stats.walks.get(), 1);
    }

    #[test]
    fn port_count_serializes_wide_requests() {
        let mut r = rig(MmuModel::naive()); // 3 ports
                                            // Warm 6 pages.
        r.mmu.advance(0, &mut r.mem, &r.space);
        let pages: Vec<PageReq> = (0..6).map(|i| pr(page(&r, i), 0)).collect();
        for p in &pages {
            let _ = r.mmu.translate(0, 0, &[*p], &r.space, &mut r.buf);
            let _ = settle(&mut r, 1);
        }
        let t0 = 1_000_000;
        let out = r.mmu.translate(t0, 0, &pages, &r.space, &mut r.buf);
        // 6 pages / 3 ports = 2 cycles → ready one cycle after `now`.
        assert_eq!(out, TranslateOutcome::AllHit { ready_at: t0 + 1 });
    }

    #[test]
    fn oversized_tlb_pays_access_penalty() {
        let model = MmuModel::Real {
            tlb: TlbConfig {
                entries: 512,
                ..TlbConfig::naive()
            },
            walker: WalkerConfig::serial(),
        };
        let mut r = rig(model);
        let p = page(&r, 0);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r.mmu.translate(0, 0, &[pr(p, 0)], &r.space, &mut r.buf);
        let (now, _) = settle(&mut r, 1);
        let out = r
            .mmu
            .translate(now + 100, 0, &[pr(p, 0)], &r.space, &mut r.buf);
        assert_eq!(
            out,
            TranslateOutcome::AllHit {
                ready_at: now + 100 + 4
            }
        );
    }

    #[test]
    fn eviction_events_reach_the_core() {
        // Tiny TLB (8 entries) to force evictions quickly.
        let model = MmuModel::Real {
            tlb: TlbConfig {
                entries: 8,
                ways: 4,
                ports: 4,
                mode: TlbMode::HitUnderMiss,
                mshrs: 32,
                ideal_latency: false,
            },
            walker: WalkerConfig::coalesced(),
        };
        let mut r = rig(model);
        let mut evicted = false;
        let mut now = 0;
        for i in 0..64 {
            r.mmu.advance(now, &mut r.mem, &r.space);
            let p = page(&r, i);
            let _ = r.mmu.translate(now, 0, &[pr(p, 0)], &r.space, &mut r.buf);
            let (n2, events) = settle(&mut r, now + 1);
            now = n2;
            evicted |= events.iter().any(|e| matches!(e, MmuEvent::Evicted { .. }));
        }
        assert!(evicted, "64 pages through an 8-entry TLB must evict");
    }

    #[test]
    fn wide_requests_split_across_scarce_mshrs() {
        // An instruction with more missing pages than MSHR entries must
        // make progress in rounds rather than rejecting forever.
        let model = MmuModel::Real {
            tlb: TlbConfig {
                mshrs: 2,
                mode: TlbMode::HitUnderMiss,
                ..TlbConfig::naive()
            },
            walker: WalkerConfig::coalesced(),
        };
        let mut r = rig(model);
        let pages: Vec<PageReq> = (0..6).map(|i| pr(page(&r, i), 0)).collect();
        r.mmu.advance(0, &mut r.mem, &r.space);
        let out = r.mmu.translate(0, 0, &pages, &r.space, &mut r.buf);
        // Only the MSHR capacity registers; the rest wait.
        assert!(
            matches!(out, TranslateOutcome::Miss { misses: 2, .. }),
            "{out:?}"
        );
        let (now, events) = settle(&mut r, 1);
        let wakes = events
            .iter()
            .filter(|e| matches!(e, MmuEvent::Wake { .. }))
            .count();
        assert_eq!(wakes, 2);
        // Re-presenting the remaining pages registers the next round.
        let remaining: Vec<PageReq> = pages[2..].to_vec();
        let out = r.mmu.translate(now, 0, &remaining, &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { misses: 2, .. }));
    }

    #[test]
    fn fault_event_for_unmapped_page() {
        let mut r = rig(MmuModel::naive());
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r
            .mmu
            .translate(0, 7, &[pr(Vpn::new(0x1), 7)], &r.space, &mut r.buf);
        let (_, events) = settle(&mut r, 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, MmuEvent::Fault { warp: 7, .. })));
        assert_eq!(r.mmu.faults.get(), 1);
    }

    #[test]
    fn coalesced_waiters_each_get_a_fault_event() {
        // Regression: a faulting walk whose MSHR merged several waiters
        // must emit one fault per waiter — a single unattributed event
        // would leave the merged warps asleep forever.
        let model = MmuModel::Real {
            tlb: TlbConfig {
                mode: TlbMode::HitUnderMiss,
                ..TlbConfig::naive()
            },
            walker: WalkerConfig::serial(),
        };
        let mut r = rig(model);
        let unmapped = Vpn::new(0x1);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r
            .mmu
            .translate(0, 3, &[pr(unmapped, 3)], &r.space, &mut r.buf);
        let _ = r
            .mmu
            .translate(0, 9, &[pr(unmapped, 9)], &r.space, &mut r.buf);
        assert_eq!(r.mmu.outstanding_walks(), 1, "misses merged in one MSHR");
        let (_, events) = settle(&mut r, 1);
        let faulted: Vec<u16> = events
            .iter()
            .filter_map(|e| match e {
                MmuEvent::Fault { warp, .. } => Some(*warp),
                _ => None,
            })
            .collect();
        assert_eq!(faulted.len(), 2);
        assert!(faulted.contains(&3) && faulted.contains(&9));
        assert_eq!(r.mmu.faults.get(), 1, "one faulting walk");
    }

    #[test]
    fn shootdown_squashes_inflight_walks_and_notifies_waiters() {
        let mut r = rig(MmuModel::naive());
        let p = page(&r, 0);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let out = r.mmu.translate(0, 4, &[pr(p, 4)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { .. }));
        r.mmu.shootdown(1);
        let events: Vec<MmuEvent> = r.mmu.events().collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, MmuEvent::Squashed { warp: 4, vpn, .. } if *vpn == p)));
        assert_eq!(r.mmu.outstanding_walks(), 0, "squash released the MSHR");
        assert_eq!(r.mmu.squashed_walks.get(), 1);
        assert_eq!(r.mmu.shootdowns.get(), 1);
        // The retried access re-walks and completes normally.
        r.mmu.advance(2, &mut r.mem, &r.space);
        let out = r.mmu.translate(2, 4, &[pr(p, 4)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { .. }));
        let (_, events) = settle(&mut r, 3);
        assert!(events
            .iter()
            .any(|e| matches!(e, MmuEvent::Wake { warp: 4, .. })));
    }

    #[test]
    fn injected_rejects_and_delays_are_deterministic() {
        let run = |inject| {
            let mut r = rig(MmuModel::naive());
            r.mmu.set_injection(inject);
            let mut log = Vec::new();
            let mut now = 0;
            for i in 0..16 {
                r.mmu.advance(now, &mut r.mem, &r.space);
                let p = page(&r, i);
                let out = r.mmu.translate(now, 0, &[pr(p, 0)], &r.space, &mut r.buf);
                log.push(format!("{out:?}"));
                let (n2, _) = settle(&mut r, now + 1);
                now = n2 + 10;
            }
            (log, r.mmu.rejects.get(), r.mmu.miss_latency.mean())
        };
        let cfg = FaultInjectConfig {
            seed: 11,
            reject_rate: 0.3,
            walk_delay_rate: 0.5,
            walk_delay_cycles: 200,
            ..FaultInjectConfig::off()
        };
        let a = run(Some(cfg));
        let b = run(Some(cfg));
        assert_eq!(a, b, "same seed, same fault schedule");
        let off = run(None);
        assert_ne!(a.2, off.2, "delayed walks must show up in the miss latency");
    }

    #[test]
    fn flush_forces_rewalk() {
        let mut r = rig(MmuModel::naive());
        let p = page(&r, 0);
        r.mmu.advance(0, &mut r.mem, &r.space);
        let _ = r.mmu.translate(0, 0, &[pr(p, 0)], &r.space, &mut r.buf);
        let (now, _) = settle(&mut r, 1);
        r.mmu.flush_tlb();
        let out = r.mmu.translate(now, 0, &[pr(p, 0)], &r.space, &mut r.buf);
        assert!(matches!(out, TranslateOutcome::Miss { .. }));
    }
}
