//! Cache-conscious and TLB-conscious warp scheduling policies.
//!
//! Section 7 of the paper studies three locality-aware scheduler
//! policies, all built on victim tag arrays ([`crate::vta`]) and
//! lost-locality scoring ([`crate::lls`]):
//!
//! * **CCWS** (baseline, from Rogers et al. [52]) — per-warp *cache-line*
//!   VTAs, probed on L1 misses; hits bump the warp's score.
//! * **TA-CCWS** — CCWS whose scoring also weighs TLB misses `x:y`
//!   against cache misses (Figure 16 sweeps x ∈ {1, 2, 4, 8}). Weights
//!   are powers of two so hardware updates are shifts.
//! * **TCWS** — replaces cache-line VTAs with *page-granularity* TLB
//!   VTAs probed on TLB misses (half the area), and optionally bumps
//!   scores on TLB *hits* weighted by the entry's LRU-stack depth —
//!   a deep hit means the PTE was close to eviction (Figures 17, 18).
//!
//! The shader core forwards its memory-pipeline events here and asks
//! [`LocalityPolicy::issue_allowed`] before scheduling a warp.

use crate::lls::{Lls, LlsConfig};
use crate::vta::Vta;
use gmmu_sim::stats::Counter;
use gmmu_sim::Cycle;
use gmmu_vm::Vpn;

/// CCWS cache-line VTA geometry (Section 7.1): 16 entries, 8-way.
pub const CCWS_VTA_ENTRIES: usize = 16;
/// CCWS VTA associativity.
pub const CCWS_VTA_WAYS: usize = 8;

/// Which locality policy the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Plain round-robin / greedy scheduling: no locality machinery.
    None,
    /// Cache-conscious wavefront scheduling.
    Ccws,
    /// TLB-aware CCWS: a TLB miss is scored `tlb_weight` times as much
    /// as a cache miss.
    TaCcws {
        /// Power-of-two weight on TLB misses (the `x` in `x:1`).
        tlb_weight: u32,
    },
    /// TLB-conscious warp scheduling with page-granularity VTAs.
    Tcws {
        /// VTA entries per warp (Figure 17 sweeps 2–16).
        entries_per_warp: usize,
        /// Score added for a TLB hit at LRU depth 0..=3 (Figure 18;
        /// all-zero disables depth weighting as in Figure 17).
        lru_weights: [u32; 4],
    },
}

impl PolicyKind {
    /// The Figure 18 best configuration: TCWS, 8 EPW, LRU(1,2,4,8).
    pub fn tcws_best() -> Self {
        PolicyKind::Tcws {
            entries_per_warp: 8,
            lru_weights: [1, 2, 4, 8],
        }
    }

    /// Whether the policy needs cache-line VTAs.
    pub fn uses_line_vtas(&self) -> bool {
        matches!(self, PolicyKind::Ccws | PolicyKind::TaCcws { .. })
    }

    /// Whether the policy needs page VTAs.
    pub fn uses_page_vtas(&self) -> bool {
        matches!(self, PolicyKind::Tcws { .. })
    }

    /// Victim-tag storage in tag-entries per warp — the hardware-cost
    /// comparison behind "TCWS requires only half the hardware"
    /// (page tags are also shorter than line tags, which this simple
    /// count understates).
    pub fn vta_entries_per_warp(&self) -> usize {
        match self {
            PolicyKind::None => 0,
            PolicyKind::Ccws | PolicyKind::TaCcws { .. } => CCWS_VTA_ENTRIES,
            PolicyKind::Tcws {
                entries_per_warp, ..
            } => *entries_per_warp,
        }
    }
}

/// Tunables shared by all policy kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Base score per lost-locality event (a VTA hit).
    pub unit: u32,
    /// Lost-locality scoring parameters.
    pub lls: LlsConfig,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            unit: 256,
            lls: LlsConfig::default(),
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for PolicyKind {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        match *self {
            PolicyKind::None => w.u8(0),
            PolicyKind::Ccws => w.u8(1),
            PolicyKind::TaCcws { tlb_weight } => {
                w.u8(2);
                w.u32(tlb_weight);
            }
            PolicyKind::Tcws {
                entries_per_warp,
                lru_weights,
            } => {
                w.u8(3);
                w.usize(entries_per_warp);
                for weight in lru_weights {
                    w.u32(weight);
                }
            }
        }
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        *self = match r.u8()? {
            0 => PolicyKind::None,
            1 => PolicyKind::Ccws,
            2 => PolicyKind::TaCcws {
                tlb_weight: r.u32()?,
            },
            3 => {
                let entries_per_warp = r.usize()?;
                let mut lru_weights = [0u32; 4];
                for weight in &mut lru_weights {
                    *weight = r.u32()?;
                }
                PolicyKind::Tcws {
                    entries_per_warp,
                    lru_weights,
                }
            }
            _ => return Err(gmmu_sim::ckpt::CkptError::Corrupt("unknown policy kind")),
        };
        Ok(())
    }
}

impl gmmu_sim::ckpt::Ckpt for PolicyConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u32(self.unit);
        self.lls.save(w);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.unit = r.u32()?;
        self.lls.load(r)
    }
}

/// The locality-aware scheduling policy attached to one shader core.
///
/// # Examples
///
/// ```
/// use gmmu_core::ccws::{LocalityPolicy, PolicyConfig, PolicyKind};
///
/// let mut p = LocalityPolicy::new(PolicyKind::Ccws, 4, PolicyConfig::default());
/// // Warp 0's line got evicted, then warp 0 missed on it again:
/// p.on_l1_evict(0, 0x42);
/// p.on_l1_miss(0, 0x42, false);
/// assert!(p.lls().score(0) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LocalityPolicy {
    kind: PolicyKind,
    config: PolicyConfig,
    line_vtas: Vec<Vta>,
    page_vtas: Vec<Vta>,
    lls: Lls,
    /// Lost-locality events observed (any source).
    pub events: Counter,
}

impl LocalityPolicy {
    /// Creates the policy state for `n_warps` warps.
    pub fn new(kind: PolicyKind, n_warps: usize, config: PolicyConfig) -> Self {
        let line_vtas = if kind.uses_line_vtas() {
            (0..n_warps)
                .map(|_| Vta::new(CCWS_VTA_ENTRIES, CCWS_VTA_WAYS))
                .collect()
        } else {
            Vec::new()
        };
        let page_vtas = if let PolicyKind::Tcws {
            entries_per_warp, ..
        } = kind
        {
            (0..n_warps)
                .map(|_| Vta::new(entries_per_warp, entries_per_warp.min(8)))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            kind,
            config,
            line_vtas,
            page_vtas,
            lls: Lls::new(n_warps, config.lls),
            events: Counter::new(),
        }
    }

    /// The configured policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Read access to the scores (diagnostics and tests).
    pub fn lls(&self) -> &Lls {
        &self.lls
    }

    /// Registers this scheduler policy's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.lost_locality_events"), self.events.get());
    }

    /// An L1 line allocated by `owner` was evicted.
    pub fn on_l1_evict(&mut self, owner: u16, line: u64) {
        if self.kind.uses_line_vtas() {
            self.line_vtas[owner as usize].insert(line);
        }
    }

    /// `warp` missed in the L1 on `line`; `instr_tlb_missed` says whether
    /// the same memory instruction also took a TLB miss (TA-CCWS weighs
    /// those more heavily).
    pub fn on_l1_miss(&mut self, warp: u16, line: u64, instr_tlb_missed: bool) {
        if !self.kind.uses_line_vtas() {
            return;
        }
        if self.line_vtas[warp as usize].probe(line) {
            let weight = match self.kind {
                PolicyKind::TaCcws { tlb_weight } if instr_tlb_missed => tlb_weight,
                _ => 1,
            };
            self.events.inc();
            self.lls.bump(warp as usize, self.config.unit * weight);
        }
    }

    /// A TLB entry allocated by `owner` was evicted.
    pub fn on_tlb_evict(&mut self, owner: u16, vpn: Vpn) {
        if self.kind.uses_page_vtas() {
            self.page_vtas[owner as usize].insert(vpn.raw());
        }
    }

    /// `warp` missed in the TLB on `vpn`.
    pub fn on_tlb_miss(&mut self, warp: u16, vpn: Vpn) {
        if let PolicyKind::Tcws { .. } = self.kind {
            if self.page_vtas[warp as usize].probe(vpn.raw()) {
                self.events.inc();
                self.lls.bump(warp as usize, self.config.unit);
            }
        }
    }

    /// `warp` hit in the TLB at LRU-stack depth `depth` (0 = MRU).
    ///
    /// Depth-weighted hits are frequent, so they carry a small unit —
    /// they nudge scheduling decisions between the rarer VTA events
    /// (Section 7.2's "update LLS logic sufficiently often").
    pub fn on_tlb_hit(&mut self, warp: u16, depth: u8) {
        if let PolicyKind::Tcws { lru_weights, .. } = self.kind {
            let w = lru_weights[(depth as usize).min(3)];
            if w > 0 {
                self.lls
                    .bump(warp as usize, w * (self.config.unit / 32).max(1));
            }
        }
    }

    /// Time-based score decay; call once per core cycle.
    pub fn tick(&mut self, now: Cycle) {
        if !matches!(self.kind, PolicyKind::None) {
            self.lls.tick(now);
        }
    }

    /// The cycle of the next score-decay epoch, or `None` for the
    /// [`PolicyKind::None`] policy (which never changes state over
    /// time). Decay can release throttled warps, so the event-skipping
    /// engine must not jump past it while throttling could matter.
    pub fn next_event_at(&self) -> Option<Cycle> {
        match self.kind {
            PolicyKind::None => None,
            _ => Some(self.lls.next_decay_at()),
        }
    }

    /// Whether the scheduler may issue from `warp` this cycle.
    pub fn issue_allowed(&mut self, warp: u16) -> bool {
        match self.kind {
            PolicyKind::None => true,
            _ => self.lls.allowed(warp as usize),
        }
    }

    /// Warps currently schedulable (diagnostics).
    pub fn active_warps(&mut self) -> usize {
        self.lls.active_count()
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for LocalityPolicy {
    /// VTA counts per kind are geometry (empty or one per warp, decided
    /// by the policy kind), so the stream holds each array element in
    /// index order without a length.
    fn save(&self, w: &mut Saver) {
        for vta in self.line_vtas.iter().chain(&self.page_vtas) {
            vta.save(w);
        }
        self.lls.save(w);
        self.events.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        for vta in self.line_vtas.iter_mut().chain(&mut self.page_vtas) {
            vta.load(r)?;
        }
        self.lls.load(r)?;
        self.events.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PolicyConfig {
        PolicyConfig {
            unit: 64,
            lls: LlsConfig {
                cutoff_unit: 128,
                decay_interval: 64,
                decay_shift: 2,
                min_active: 1,
            },
        }
    }

    #[test]
    fn none_policy_never_throttles() {
        let mut p = LocalityPolicy::new(PolicyKind::None, 4, cfg());
        p.on_l1_evict(0, 1);
        p.on_l1_miss(0, 1, true);
        p.on_tlb_miss(0, Vpn::new(1));
        for w in 0..4 {
            assert!(p.issue_allowed(w));
        }
        assert_eq!(p.lls().total(), 0);
    }

    #[test]
    fn ccws_scores_only_on_vta_hits() {
        let mut p = LocalityPolicy::new(PolicyKind::Ccws, 4, cfg());
        p.on_l1_miss(0, 0x42, false); // never evicted → no VTA hit
        assert_eq!(p.lls().score(0), 0);
        p.on_l1_evict(0, 0x42);
        p.on_l1_miss(0, 0x42, false);
        assert_eq!(p.lls().score(0), 64);
        // Another warp's eviction does not pollute warp 0's VTA.
        p.on_l1_evict(1, 0x43);
        p.on_l1_miss(0, 0x43, false);
        assert_eq!(p.lls().score(0), 64);
    }

    #[test]
    fn ta_ccws_weighs_tlb_missing_instructions() {
        let w4 = PolicyKind::TaCcws { tlb_weight: 4 };
        let mut p = LocalityPolicy::new(w4, 4, cfg());
        // A raw TLB miss is not itself a lost-locality event.
        p.on_tlb_miss(1, Vpn::new(9));
        assert_eq!(p.lls().score(1), 0);
        // A cache miss with a VTA hit whose instruction TLB-missed is
        // weighted 4:1 against one with a TLB hit.
        p.on_l1_evict(2, 7);
        p.on_l1_miss(2, 7, true);
        assert_eq!(p.lls().score(2), 4 * 64);
        p.on_l1_evict(3, 8);
        p.on_l1_miss(3, 8, false);
        assert_eq!(p.lls().score(3), 64);
    }

    #[test]
    fn tcws_uses_page_vtas_not_line_vtas() {
        let mut p = LocalityPolicy::new(PolicyKind::tcws_best(), 4, cfg());
        // Line events are ignored entirely.
        p.on_l1_evict(0, 1);
        p.on_l1_miss(0, 1, true);
        assert_eq!(p.lls().score(0), 0);
        // Page events drive scoring.
        p.on_tlb_evict(0, Vpn::new(5));
        p.on_tlb_miss(0, Vpn::new(5));
        assert_eq!(p.lls().score(0), 64);
    }

    #[test]
    fn tcws_lru_depth_weighting() {
        let mut p = LocalityPolicy::new(
            PolicyKind::Tcws {
                entries_per_warp: 8,
                lru_weights: [1, 2, 4, 8],
            },
            2,
            cfg(),
        );
        let unit = 64 / 32;
        p.on_tlb_hit(0, 0);
        assert_eq!(p.lls().score(0), unit);
        p.on_tlb_hit(0, 3);
        assert_eq!(p.lls().score(0), unit + 8 * unit);
        // Depth beyond 3 clamps.
        p.on_tlb_hit(1, 9);
        assert_eq!(p.lls().score(1), 8 * unit);
    }

    #[test]
    fn tcws_without_depth_weights_ignores_hits() {
        let mut p = LocalityPolicy::new(
            PolicyKind::Tcws {
                entries_per_warp: 8,
                lru_weights: [0, 0, 0, 0],
            },
            2,
            cfg(),
        );
        p.on_tlb_hit(0, 3);
        assert_eq!(p.lls().score(0), 0);
    }

    #[test]
    fn throttling_engages_and_relaxes() {
        let mut p = LocalityPolicy::new(PolicyKind::Ccws, 4, cfg());
        for _ in 0..8 {
            p.on_l1_evict(3, 9);
            p.on_l1_miss(3, 9, false);
        }
        assert!(p.issue_allowed(3));
        assert!(p.active_warps() < 4);
        let mut now = 0;
        for _ in 0..500 {
            now += 64;
            p.tick(now);
        }
        assert_eq!(p.active_warps(), 4);
    }

    #[test]
    fn hardware_cost_comparison() {
        assert_eq!(PolicyKind::Ccws.vta_entries_per_warp(), 16);
        assert_eq!(PolicyKind::tcws_best().vta_entries_per_warp(), 8);
        // "TLB-based VTAs in TCWS require half the area overhead."
        assert!(
            PolicyKind::tcws_best().vta_entries_per_warp() * 2
                <= PolicyKind::Ccws.vta_entries_per_warp()
        );
    }
}
