//! The Common Page Matrix (CPM) for TLB-aware thread block compaction.
//!
//! Section 8.2: a table with one row per static warp (48 on the paper's
//! cores) and one saturating counter per other warp. On a TLB hit, the
//! hitting warp's row is selected and the counters for the warps in the
//! entry's history list are incremented — so `cpm[w][h]` approaches its
//! maximum when warps `w` and `h` keep touching the same PTEs. The
//! thread compactor consults the matrix: a thread may join a dynamic
//! warp only if its home warp's counters against every member already
//! compacted are saturated. The table is flushed periodically (every
//! 500 cycles suffices) so it adapts to phase changes.

use gmmu_sim::stats::Counter;
use gmmu_sim::Cycle;

/// Configuration of the CPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpmConfig {
    /// Bits per saturating counter (the paper sweeps 1–3; 3 performs
    /// best, Figure 22).
    pub counter_bits: u8,
    /// Cycles between table flushes (500 in the paper).
    pub flush_interval: u64,
}

impl Default for CpmConfig {
    fn default() -> Self {
        Self {
            counter_bits: 3,
            flush_interval: 500,
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for CpmConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u8(self.counter_bits);
        w.u64(self.flush_interval);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.counter_bits = r.u8()?;
        self.flush_interval = r.u64()?;
        Ok(())
    }
}

/// The warp-pair PTE-affinity matrix.
///
/// # Examples
///
/// ```
/// use gmmu_core::cpm::{CommonPageMatrix, CpmConfig};
///
/// let mut cpm = CommonPageMatrix::new(4, CpmConfig { counter_bits: 1, flush_interval: 500 });
/// // Warps 0 and 1 repeatedly hit the same TLB entries:
/// cpm.record_hit(0, &[1]);
/// cpm.record_hit(1, &[0]);
/// assert!(cpm.is_compatible(0, [1].into_iter()));
/// assert!(!cpm.is_compatible(0, [2].into_iter()));
/// ```
#[derive(Debug, Clone)]
pub struct CommonPageMatrix {
    n_warps: usize,
    max: u8,
    counters: Vec<u8>,
    config: CpmConfig,
    last_flush: Cycle,
    /// Counter updates applied.
    pub updates: Counter,
    /// Table flushes performed.
    pub flushes: Counter,
}

impl CommonPageMatrix {
    /// Creates an all-zero matrix for `n_warps` static warps.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 8, or `n_warps`
    /// is 0.
    pub fn new(n_warps: usize, config: CpmConfig) -> Self {
        assert!(n_warps > 0, "need at least one warp");
        assert!(
            (1..=8).contains(&config.counter_bits),
            "counter bits must be 1..=8"
        );
        Self {
            n_warps,
            max: ((1u16 << config.counter_bits) - 1) as u8,
            counters: vec![0; n_warps * n_warps],
            config,
            last_flush: 0,
            updates: Counter::new(),
            flushes: Counter::new(),
        }
    }

    /// Maximum (saturated) counter value.
    pub fn max_value(&self) -> u8 {
        self.max
    }

    /// Storage cost in bits (the paper's 48×47 3-bit table ≈ 0.8 KB).
    pub fn storage_bits(&self) -> usize {
        self.n_warps * (self.n_warps - 1) * self.config.counter_bits as usize
    }

    #[inline]
    fn idx(&self, row: u16, col: u16) -> usize {
        row as usize * self.n_warps + col as usize
    }

    /// Counter value for (row, col).
    pub fn counter(&self, row: u16, col: u16) -> u8 {
        self.counters[self.idx(row, col)]
    }

    /// Records that `warp` hit a TLB entry previously touched by the
    /// warps in `history` (the TLB entry's per-entry history list).
    pub fn record_hit(&mut self, warp: u16, history: &[u16]) {
        for &h in history {
            if h == warp || h as usize >= self.n_warps {
                continue;
            }
            let i = self.idx(warp, h);
            if self.counters[i] < self.max {
                self.counters[i] += 1;
            }
            self.updates.inc();
        }
    }

    /// Whether a thread whose home warp is `candidate` may be compacted
    /// into a dynamic warp already containing threads from `members`:
    /// every pairwise counter must be saturated. An empty member set is
    /// always compatible.
    pub fn is_compatible(&self, candidate: u16, members: impl IntoIterator<Item = u16>) -> bool {
        members
            .into_iter()
            .all(|m| m == candidate || self.counter(candidate, m) == self.max)
    }

    /// Flushes the table when the flush interval has elapsed. Flush
    /// epochs are anchored at exact multiples of the interval, so the
    /// method may be called at any subset of cycles (the event-skipping
    /// engine calls it only on event cycles): every elapsed epoch is
    /// caught up, leaving the counters and the flush count exactly as a
    /// once-per-cycle caller would.
    pub fn tick(&mut self, now: Cycle) {
        let interval = self.config.flush_interval.max(1);
        let mut flushed = false;
        while now
            .checked_sub(self.last_flush)
            .is_some_and(|d| d >= interval)
        {
            self.last_flush += interval;
            self.flushes.inc();
            flushed = true;
        }
        if flushed {
            self.counters.fill(0);
        }
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for CommonPageMatrix {
    fn save(&self, w: &mut Saver) {
        self.counters.save(w);
        w.u64(self.last_flush);
        self.updates.save(w);
        self.flushes.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.counters.load(r)?;
        self.last_flush = r.u64()?;
        self.updates.load(r)?;
        self.flushes.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpm(bits: u8) -> CommonPageMatrix {
        CommonPageMatrix::new(
            8,
            CpmConfig {
                counter_bits: bits,
                flush_interval: 500,
            },
        )
    }

    #[test]
    fn counters_saturate_at_bit_width() {
        let mut c = cpm(2);
        for _ in 0..10 {
            c.record_hit(0, &[1]);
        }
        assert_eq!(c.counter(0, 1), 3);
        assert_eq!(c.max_value(), 3);
    }

    #[test]
    fn compatibility_requires_saturation() {
        let mut c = cpm(3);
        for i in 0..7 {
            assert_eq!(c.is_compatible(0, [1]), i == 7, "after {i} hits");
            c.record_hit(0, &[1]);
        }
        assert!(c.is_compatible(0, [1]));
        // Compatibility is per the candidate's row only.
        assert!(!c.is_compatible(1, [0]));
    }

    #[test]
    fn empty_member_set_is_compatible() {
        let c = cpm(1);
        assert!(c.is_compatible(3, std::iter::empty()));
    }

    #[test]
    fn self_pairs_are_ignored() {
        let mut c = cpm(1);
        c.record_hit(2, &[2]);
        assert_eq!(c.counter(2, 2), 0);
        assert!(c.is_compatible(2, [2]));
    }

    #[test]
    fn one_bit_counters_saturate_immediately() {
        let mut c = cpm(1);
        c.record_hit(4, &[5]);
        assert!(c.is_compatible(4, [5]));
    }

    #[test]
    fn periodic_flush_resets() {
        let mut c = cpm(1);
        c.record_hit(0, &[1]);
        c.tick(499); // first tick at 499 < 0 + 500 → no flush
        assert!(c.is_compatible(0, [1]));
        c.tick(500);
        assert!(!c.is_compatible(0, [1]));
        assert_eq!(c.flushes.get(), 1);
    }

    #[test]
    fn history_of_two_updates_both() {
        let mut c = cpm(1);
        c.record_hit(0, &[1, 2]);
        assert_eq!(c.counter(0, 1), 1);
        assert_eq!(c.counter(0, 2), 1);
        assert_eq!(c.updates.get(), 2);
    }

    #[test]
    fn paper_sized_table_is_under_a_kilobyte() {
        let c = CommonPageMatrix::new(48, CpmConfig::default());
        assert!(c.storage_bits() as f64 / 8.0 / 1024.0 < 1.0);
    }
}
