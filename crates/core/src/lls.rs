//! Lost-locality scoring.
//!
//! The scoring half of CCWS (Section 7.1): each warp carries a score that
//! victim-tag-array hits (and, in the TLB-aware variants, TLB events)
//! increase. When the summed score exceeds a cutoff the scheduler shrinks
//! the set of warps allowed to issue, keeping the *highest*-scoring warps
//! running — they hit most in the VTAs, so their lines are the most
//! recently evicted and they gain most from not being swapped out.
//! Scores decay over time so throttling relaxes when thrashing subsides.

use gmmu_sim::Cycle;

/// Tunables for [`Lls`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlsConfig {
    /// Score mass per throttled warp: the number of warps removed from
    /// the schedulable set is `total_score / cutoff_unit`, so a larger
    /// unit throttles more conservatively.
    pub cutoff_unit: u32,
    /// Cycles between decay steps.
    pub decay_interval: u64,
    /// Right-shift applied at each decay step (scores lose
    /// `score >> decay_shift` per step).
    pub decay_shift: u32,
    /// Never throttle below this many schedulable warps.
    pub min_active: usize,
}

impl Default for LlsConfig {
    fn default() -> Self {
        Self {
            cutoff_unit: 512,
            decay_interval: 512,
            decay_shift: 4,
            min_active: 2,
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for LlsConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u32(self.cutoff_unit);
        w.u64(self.decay_interval);
        w.u32(self.decay_shift);
        w.usize(self.min_active);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.cutoff_unit = r.u32()?;
        self.decay_interval = r.u64()?;
        self.decay_shift = r.u32()?;
        self.min_active = r.usize()?;
        Ok(())
    }
}

/// Per-warp lost-locality scores with cutoff-based issue throttling.
///
/// # Examples
///
/// ```
/// use gmmu_core::lls::{Lls, LlsConfig};
/// // three warps, tiny cutoff so one bump throttles
/// let mut lls = Lls::new(3, LlsConfig { cutoff_unit: 64, ..LlsConfig::default() });
/// assert!(lls.allowed(0) && lls.allowed(1) && lls.allowed(2));
/// lls.bump(1, 200);
/// assert!(lls.allowed(1));     // the high scorer stays schedulable
/// assert!(!lls.allowed(0) || !lls.allowed(2)); // somebody was throttled
/// ```
#[derive(Debug, Clone)]
pub struct Lls {
    config: LlsConfig,
    scores: Vec<u32>,
    total: u64,
    last_decay: Cycle,
    allowed: Vec<bool>,
    dirty: bool,
    /// Rotates tie-breaking among equal scores so zero-score warps take
    /// turns being throttled instead of starving.
    rotate: usize,
}

impl Lls {
    /// Creates scoring state for `n_warps` warps.
    ///
    /// # Panics
    ///
    /// Panics if `n_warps` is zero.
    pub fn new(n_warps: usize, config: LlsConfig) -> Self {
        assert!(n_warps > 0, "need at least one warp");
        Self {
            config,
            scores: vec![0; n_warps],
            total: 0,
            last_decay: 0,
            allowed: vec![true; n_warps],
            dirty: false,
            rotate: 0,
        }
    }

    /// Current score of a warp.
    pub fn score(&self, warp: usize) -> u32 {
        self.scores[warp]
    }

    /// Sum of all scores.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `amount` to a warp's score (a lost-locality event).
    pub fn bump(&mut self, warp: usize, amount: u32) {
        if amount == 0 {
            return;
        }
        self.scores[warp] = self.scores[warp].saturating_add(amount);
        self.total += amount as u64;
        self.dirty = true;
    }

    /// Applies time-based decay. Decay epochs are anchored at exact
    /// multiples of the decay interval, so the method may be called at
    /// any subset of cycles (the event-skipping engine calls it only on
    /// event cycles): every elapsed epoch is caught up, which yields the
    /// same scores as calling it once per cycle.
    pub fn tick(&mut self, now: Cycle) {
        let interval = self.config.decay_interval.max(1);
        while now
            .checked_sub(self.last_decay)
            .is_some_and(|d| d >= interval)
        {
            self.last_decay += interval;
            self.decay_once();
        }
    }

    /// The cycle at which the next decay epoch fires (scores may change
    /// and throttled warps may be released then).
    pub fn next_decay_at(&self) -> Cycle {
        self.last_decay
            .saturating_add(self.config.decay_interval.max(1))
    }

    fn decay_once(&mut self) {
        // Rotate zero-score throttling victims once per decay epoch:
        // stable enough for protected warps to reap reuse, fresh enough
        // that nobody starves.
        self.rotate = self.rotate.wrapping_add(1);
        let shift = self.config.decay_shift;
        let mut total = 0u64;
        for s in &mut self.scores {
            *s -= *s >> shift;
            // Sub-granularity residue dies off linearly.
            *s = s.saturating_sub(1);
            total += *s as u64;
        }
        self.total = total;
        self.dirty = true;
    }

    fn recompute(&mut self) {
        self.dirty = false;
        let n = self.scores.len();
        let throttle = ((self.total / self.config.cutoff_unit as u64) as usize)
            .min(n.saturating_sub(self.config.min_active));
        if throttle == 0 {
            self.allowed.fill(true);
            return;
        }
        // Throttle the `throttle` lowest-scoring warps; ties rotate per
        // decay epoch so score-less warps share the throttling instead
        // of starving.
        let rot = self.rotate;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&w| (self.scores[w], (w + rot) % n));
        self.allowed.fill(true);
        for &w in order.iter().take(throttle) {
            self.allowed[w] = false;
        }
    }

    /// Whether a warp may issue this cycle under the current scores.
    pub fn allowed(&mut self, warp: usize) -> bool {
        if self.dirty {
            self.recompute();
        }
        self.allowed[warp]
    }

    /// Number of warps currently schedulable.
    pub fn active_count(&mut self) -> usize {
        if self.dirty {
            self.recompute();
        }
        self.allowed.iter().filter(|a| **a).count()
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for Lls {
    /// The `allowed` mask is a cache over `scores`/`rotate`; marking the
    /// state dirty on load lets `recompute` rebuild it on first use.
    fn save(&self, w: &mut Saver) {
        self.scores.save(w);
        w.u64(self.total);
        w.u64(self.last_decay);
        w.usize(self.rotate);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.scores.load(r)?;
        self.total = r.u64()?;
        self.last_decay = r.u64()?;
        self.rotate = r.usize()?;
        self.dirty = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LlsConfig {
        LlsConfig {
            cutoff_unit: 100,
            decay_interval: 10,
            decay_shift: 1,
            min_active: 1,
        }
    }

    #[test]
    fn no_scores_means_no_throttling() {
        let mut lls = Lls::new(4, cfg());
        for w in 0..4 {
            assert!(lls.allowed(w));
        }
    }

    #[test]
    fn high_scorers_survive_throttling() {
        let mut lls = Lls::new(4, cfg());
        lls.bump(2, 150);
        lls.bump(3, 80);
        // total 230 → throttle 2 lowest (warps 0 and 1).
        assert!(!lls.allowed(0));
        assert!(!lls.allowed(1));
        assert!(lls.allowed(2));
        assert!(lls.allowed(3));
        assert_eq!(lls.active_count(), 2);
    }

    #[test]
    fn min_active_is_respected() {
        let mut lls = Lls::new(3, cfg());
        lls.bump(0, 100_000);
        assert!(lls.active_count() >= 1);
        assert!(lls.allowed(0), "the top scorer is always schedulable");
    }

    #[test]
    fn decay_releases_throttled_warps() {
        let mut lls = Lls::new(4, cfg());
        lls.bump(2, 150);
        assert!(lls.active_count() < 4);
        let mut now = 0;
        for _ in 0..200 {
            now += 10;
            lls.tick(now);
        }
        assert_eq!(lls.total(), 0);
        assert_eq!(lls.active_count(), 4);
    }

    #[test]
    fn tick_between_intervals_is_a_noop() {
        let mut lls = Lls::new(2, cfg());
        lls.bump(0, 64);
        let before = lls.score(0);
        lls.tick(5); // < decay_interval
        assert_eq!(lls.score(0), before);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut a = Lls::new(4, cfg());
        let mut b = Lls::new(4, cfg());
        for l in [&mut a, &mut b] {
            l.bump(1, 200);
        }
        for w in 0..4 {
            assert_eq!(a.allowed(w), b.allowed(w));
        }
    }

    #[test]
    fn zero_score_victims_rotate() {
        let mut lls = Lls::new(8, cfg());
        lls.bump(7, 150); // throttle 1 warp; 0..=6 tie at zero
        let first: Vec<bool> = (0..8).map(|w| lls.allowed(w)).collect();
        lls.tick(10); // next decay epoch rotates the victims
        lls.bump(7, 150);
        let second: Vec<bool> = (0..8).map(|w| lls.allowed(w)).collect();
        assert_ne!(first, second, "victims must rotate across epochs");
    }
}
