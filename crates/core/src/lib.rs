#![warn(missing_docs)]

//! GPU MMU designs — the paper's primary contribution.
//!
//! This crate implements every hardware mechanism proposed or evaluated in
//! *Architectural Support for Address Translation on GPUs* (ASPLOS 2014):
//!
//! * [`tlb`] — per-shader-core TLBs accessed in parallel with the L1 data
//!   cache: set-associative, LRU, multi-ported, with CACTI-derived access
//!   latencies, MSHRs, and the paper's three operating modes (blocking,
//!   hit-under-miss, hit-under-miss + TLB-hit/cache-access overlap).
//! * [`walker`] — hardware page-table walkers: the naive serial design
//!   (one or many walkers), and the proposed *coalesced* walker that
//!   deduplicates upper-level PTE loads and groups same-cache-line loads
//!   across concurrent walks (Figures 8 and 9).
//! * [`mmu`] — the per-core MMU tying TLB + walker + MSHRs together and
//!   exposing the translation interface the shader core pipeline uses.
//!   Also provides the *ideal* (no-TLB) model every figure normalizes to.
//! * [`vta`] — victim tag arrays (cache-line or page granularity).
//! * [`lls`] — lost-locality scoring (the CCWS score/cutoff machinery).
//! * [`ccws`] — the scheduling policies: CCWS, TLB-aware CCWS, and TLB
//!   conscious warp scheduling (Section 7).
//! * [`cpm`] — the Common Page Matrix that makes thread block compaction
//!   TLB-aware (Section 8).

pub mod ccws;
pub mod cpm;
pub mod lls;
pub mod mmu;
pub mod tlb;
pub mod vta;
pub mod walker;

pub use ccws::{LocalityPolicy, PolicyKind};
pub use cpm::CommonPageMatrix;
pub use mmu::{Mmu, MmuEvent, MmuModel, PageReq, TranslateBuf, TranslateOutcome, Translation};
pub use tlb::{Tlb, TlbConfig, TlbMode};
pub use walker::{Walker, WalkerConfig, WalkerKind};
