//! Strongly-typed addresses and page geometry.
//!
//! Newtypes keep virtual and physical addresses from being confused — the
//! entire point of the paper is the hardware that converts one into the
//! other, so the type system should enforce which side of the TLB a value
//! lives on.

use std::fmt;

/// Base page size: 4 KiB, the size the paper focuses on (Section 5.2).
pub const PAGE_SHIFT: u32 = 12;
/// Bytes per 4 KiB page.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// Large page size: 2 MiB (Section 9).
pub const LARGE_PAGE_SHIFT: u32 = 21;
/// Bytes per 2 MiB page.
pub const LARGE_PAGE_BYTES: u64 = 1 << LARGE_PAGE_SHIFT;
/// 4 KiB frames per 2 MiB frame.
pub const FRAMES_PER_LARGE: u64 = 1 << (LARGE_PAGE_SHIFT - PAGE_SHIFT);

/// Page size of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PageSize {
    /// 4 KiB page, mapped at the PT (level-1) entry.
    #[default]
    Base4K,
    /// 2 MiB page, mapped at the PD (level-2) entry.
    Large2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => PAGE_SHIFT,
            PageSize::Large2M => LARGE_PAGE_SHIFT,
        }
    }

    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Mask selecting the in-page offset bits.
    pub fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// Number of page-table levels a walk must traverse to reach the
    /// mapping: 4 for 4 KiB pages, 3 for 2 MiB pages.
    pub fn walk_levels(self) -> usize {
        match self {
            PageSize::Base4K => 4,
            PageSize::Large2M => 3,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4KB"),
            PageSize::Large2M => write!(f, "2MB"),
        }
    }
}

/// A virtual address in the unified CPU/GPU address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Wraps a raw 64-bit virtual address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw address bits.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address plus a byte offset.
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// The 4 KiB virtual page number containing this address.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Offset within the 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// The 128-byte cache-line index of this address (global).
    pub const fn line(self, line_shift: u32) -> u64 {
        self.0 >> line_shift
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A physical address (post-translation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// Wraps a raw physical address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw address bits.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address plus a byte offset.
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// The 4 KiB physical frame number containing this address.
    pub const fn ppn(self) -> Ppn {
        Ppn(self.0 >> PAGE_SHIFT)
    }

    /// The cache-line index of this address for a given line size.
    pub const fn line(self, line_shift: u32) -> u64 {
        self.0 >> line_shift
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A virtual page number (4 KiB granular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Wraps a raw virtual page number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte of the page.
    pub const fn base(self) -> VAddr {
        VAddr(self.0 << PAGE_SHIFT)
    }

    /// The 9-bit page-table index for radix `level` (4 = PML4 … 1 = PT),
    /// exactly as x86-64 slices the virtual address (bits 47–39 for PML4
    /// down to bits 20–12 for the PT).
    pub const fn index(self, level: u32) -> usize {
        debug_assert!(level >= 1 && level <= 4);
        ((self.0 >> (9 * (level - 1))) & 0x1ff) as usize
    }

    /// The containing 2 MiB-aligned virtual page number (for large-page
    /// coalescing: bits below the PD index dropped).
    pub const fn large(self) -> Vpn {
        Vpn(self.0 & !(FRAMES_PER_LARGE - 1))
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical page (frame) number (4 KiB granular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ppn(u64);

impl Ppn {
    /// Wraps a raw frame number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte of the frame.
    pub const fn base(self) -> PAddr {
        PAddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{:#x}", self.0)
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

macro_rules! ckpt_addr {
    ($($t:ty),*) => {$(
        impl Ckpt for $t {
            fn save(&self, w: &mut Saver) {
                w.u64(self.0);
            }
            fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
                self.0 = r.u64()?;
                Ok(())
            }
        }
    )*};
}

ckpt_addr!(VAddr, PAddr, Vpn, Ppn);

impl Ckpt for PageSize {
    fn save(&self, w: &mut Saver) {
        w.u8(match self {
            PageSize::Base4K => 0,
            PageSize::Large2M => 1,
        });
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => PageSize::Base4K,
            1 => PageSize::Large2M,
            _ => return Err(CkptError::Corrupt("unknown page size tag")),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_decomposition() {
        let va = VAddr::new(0x1234_5678);
        assert_eq!(va.vpn().raw(), 0x12345);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.vpn().base().offset(va.page_offset()), va);
    }

    #[test]
    fn page_table_indices_match_x86_layout() {
        // The paper's Figure 8 example: pages written as 9-bit index
        // groups (l4, l3, l2, l1).
        let vpn = Vpn::new((0xb9 << 27) | (0x0c << 18) | (0xac << 9) | 0x03);
        assert_eq!(vpn.index(4), 0xb9);
        assert_eq!(vpn.index(3), 0x0c);
        assert_eq!(vpn.index(2), 0xac);
        assert_eq!(vpn.index(1), 0x03);
    }

    #[test]
    fn large_page_rounds_down() {
        let vpn = Vpn::new(0x12345);
        assert_eq!(vpn.large().raw(), 0x12345 & !0x1ff);
        assert_eq!(vpn.large().large(), vpn.large());
    }

    #[test]
    fn page_size_geometry() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Large2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Base4K.walk_levels(), 4);
        assert_eq!(PageSize::Large2M.walk_levels(), 3);
        assert_eq!(PageSize::Large2M.offset_mask(), (1 << 21) - 1);
    }

    #[test]
    fn line_indexing() {
        let va = VAddr::new(256);
        assert_eq!(va.line(7), 2); // 128-byte lines
        let pa = PAddr::new(255);
        assert_eq!(pa.line(7), 1);
    }

    #[test]
    fn ppn_roundtrip() {
        let pa = PAddr::new(0xdead_b000);
        assert_eq!(pa.ppn().base(), PAddr::new(0xdead_b000));
        assert_eq!(pa.offset(0x123).ppn(), pa.ppn());
    }
}
