//! Physical frame allocation.
//!
//! The simulator never stores page *contents* — only the mapping
//! structure — but physical placement still matters: the shared L2 is
//! sliced across memory channels by physical line address, and the paper's
//! physically-tagged caches see whatever frame spread the OS produces.
//! The allocator therefore supports an optional bijective scramble so that
//! virtually-contiguous data lands on scattered frames, as on a live
//! system with a fragmented free list.

use crate::addr::{Ppn, FRAMES_PER_LARGE};

/// Allocation policy for 4 KiB frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FramePolicy {
    /// Frames handed out in ascending order (a freshly booted machine).
    Sequential,
    /// Frames handed out in a pseudo-random but bijective order
    /// (a long-running machine with a churned free list).
    #[default]
    Scrambled,
}

/// Allocates 4 KiB frames (and 2 MiB-aligned frame runs) from a fixed-size
/// physical memory.
///
/// # Examples
///
/// ```
/// use gmmu_vm::frame::{FrameAlloc, FramePolicy};
/// let mut alloc = FrameAlloc::new(1 << 20, FramePolicy::Scrambled);
/// let a = alloc.alloc().unwrap();
/// let b = alloc.alloc().unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    /// Total 4 KiB frames (power of two).
    capacity: u64,
    /// First frame number this allocator may hand out: every allocation
    /// is offset by `base`, so allocators with disjoint
    /// `base..base+capacity` windows can never alias (the multi-tenant
    /// isolation guarantee).
    base: u64,
    /// Next sequential index for small-frame allocation (grows upward).
    next_small: u64,
    /// Next 2 MiB-aligned boundary for large allocations (grows downward).
    next_large: u64,
    policy: FramePolicy,
    /// Frames returned by `free`, reused LIFO.
    free_list: Vec<Ppn>,
}

/// Odd multiplier for the bijective scramble (Fibonacci hashing constant).
const SCRAMBLE_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

impl FrameAlloc {
    /// Creates an allocator over `capacity` 4 KiB frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is smaller than one
    /// 2 MiB run.
    pub fn new(capacity: u64, policy: FramePolicy) -> Self {
        Self::with_base(capacity, policy, 0)
    }

    /// Creates an allocator over `capacity` 4 KiB frames starting at
    /// frame `base`. All frames handed out lie in
    /// `base..base + capacity`; distinct bases at `capacity` stride give
    /// each tenant a private physical window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two, is smaller than one
    /// 2 MiB run, or `base` is not 2 MiB-aligned (large-page alignment
    /// must survive the offset).
    pub fn with_base(capacity: u64, policy: FramePolicy, base: u64) -> Self {
        assert!(capacity.is_power_of_two(), "frame capacity must be 2^k");
        assert!(capacity >= FRAMES_PER_LARGE, "capacity below one 2MB run");
        assert!(
            base.is_multiple_of(FRAMES_PER_LARGE),
            "frame base must be 2MB-aligned"
        );
        Self {
            capacity,
            base,
            next_small: 1, // frame 0 reserved (null / CR3 sanity)
            next_large: capacity,
            policy,
            free_list: Vec::new(),
        }
    }

    /// Total frame capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// First frame of this allocator's physical window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Frames currently allocated (small-region sequential high-water
    /// minus freed, ignoring large runs).
    pub fn allocated_small(&self) -> u64 {
        self.next_small - 1 - self.free_list.len() as u64
    }

    /// Allocates one 4 KiB frame.
    ///
    /// Returns `None` when physical memory is exhausted (small and large
    /// regions collide).
    pub fn alloc(&mut self) -> Option<Ppn> {
        if let Some(f) = self.free_list.pop() {
            return Some(f);
        }
        if self.next_small >= self.next_large {
            return None;
        }
        let seq = self.next_small;
        self.next_small += 1;
        let raw = match self.policy {
            FramePolicy::Sequential => seq,
            FramePolicy::Scrambled => {
                // Multiply-by-odd modulo 2^k is a bijection on 0..2^k;
                // skip frame 0 by remapping to the sequential index.
                let s = seq.wrapping_mul(SCRAMBLE_MULT) & (self.capacity - 1);
                if s == 0 {
                    seq
                } else {
                    s
                }
            }
        };
        Some(Ppn::new(self.base + raw))
    }

    /// Returns a frame to the allocator.
    pub fn free(&mut self, frame: Ppn) {
        debug_assert!(frame.raw() >= self.base && frame.raw() - self.base < self.capacity);
        self.free_list.push(frame);
    }

    /// Allocates a naturally aligned run of 512 frames (one 2 MiB page),
    /// returning the first frame. Large runs are carved from the top of
    /// physical memory and are always physically contiguous and aligned,
    /// as the OS guarantees for huge pages.
    pub fn alloc_large(&mut self) -> Option<Ppn> {
        let candidate = self.next_large.checked_sub(FRAMES_PER_LARGE)?;
        if candidate < self.next_small {
            return None;
        }
        self.next_large = candidate;
        Some(Ppn::new(self.base + candidate))
    }
}

impl gmmu_sim::ckpt::Ckpt for FramePolicy {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u8(match self {
            FramePolicy::Sequential => 0,
            FramePolicy::Scrambled => 1,
        });
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        *self = match r.u8()? {
            0 => FramePolicy::Sequential,
            1 => FramePolicy::Scrambled,
            _ => return Err(gmmu_sim::ckpt::CkptError::Corrupt("unknown frame policy")),
        };
        Ok(())
    }
}

impl gmmu_sim::ckpt::Ckpt for FrameAlloc {
    /// Capacity and policy are configuration; only the allocation cursor
    /// state is serialized. (This cursor pair *is* the simulator's frame
    /// "RNG": the scramble is a pure function of `next_small`.)
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u64(self.next_small);
        w.u64(self.next_large);
        self.free_list.save(w);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.next_small = r.u64()?;
        self.next_large = r.u64()?;
        self.free_list.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_policy_is_ascending() {
        let mut a = FrameAlloc::new(1 << 12, FramePolicy::Sequential);
        assert_eq!(a.alloc().unwrap().raw(), 1);
        assert_eq!(a.alloc().unwrap().raw(), 2);
    }

    #[test]
    fn scrambled_policy_never_repeats() {
        let mut a = FrameAlloc::new(1 << 12, FramePolicy::Scrambled);
        let mut seen = HashSet::new();
        for _ in 0..2048 {
            let f = a.alloc().expect("capacity not reached");
            assert!(f.raw() < 1 << 12);
            assert!(seen.insert(f.raw()), "duplicate frame {}", f.raw());
        }
    }

    #[test]
    fn scrambled_policy_spreads() {
        let mut a = FrameAlloc::new(1 << 16, FramePolicy::Scrambled);
        let first: Vec<u64> = (0..16).map(|_| a.alloc().unwrap().raw()).collect();
        // Consecutive allocations should not be consecutive frames.
        let adjacent = first.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent < 4, "scramble too sequential: {first:?}");
    }

    #[test]
    fn free_list_is_reused() {
        let mut a = FrameAlloc::new(1 << 12, FramePolicy::Sequential);
        let f = a.alloc().unwrap();
        a.free(f);
        assert_eq!(a.alloc().unwrap(), f);
    }

    #[test]
    fn large_runs_are_aligned_and_disjoint() {
        let mut a = FrameAlloc::new(1 << 12, FramePolicy::Scrambled);
        let mut seen = HashSet::new();
        while let Some(run) = a.alloc_large() {
            assert_eq!(run.raw() % FRAMES_PER_LARGE, 0);
            assert!(seen.insert(run.raw()));
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAlloc::new(FRAMES_PER_LARGE, FramePolicy::Sequential);
        assert!(a.alloc_large().is_none() || a.alloc_large().is_none());
        // After taking everything, small allocs eventually fail too.
        let mut n = 0;
        while a.alloc().is_some() {
            n += 1;
            assert!(n <= FRAMES_PER_LARGE);
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_capacity_rejected() {
        let _ = FrameAlloc::new(1000, FramePolicy::Sequential);
    }

    #[test]
    fn based_allocators_are_disjoint() {
        let cap = 1u64 << 12;
        let mut a = FrameAlloc::with_base(cap, FramePolicy::Scrambled, 0);
        let mut b = FrameAlloc::with_base(cap, FramePolicy::Scrambled, cap);
        for _ in 0..512 {
            let fa = a.alloc().unwrap().raw();
            let fb = b.alloc().unwrap().raw();
            assert!(fa < cap, "base-0 frame escaped its window: {fa}");
            assert!((cap..2 * cap).contains(&fb), "based frame escaped: {fb}");
            assert_eq!(fb, fa + cap, "offset must not change the sequence");
        }
        let la = a.alloc_large().unwrap().raw();
        let lb = b.alloc_large().unwrap().raw();
        assert_eq!(la % FRAMES_PER_LARGE, 0);
        assert_eq!(lb % FRAMES_PER_LARGE, 0);
        assert_eq!(lb, la + cap);
    }

    #[test]
    #[should_panic(expected = "2MB-aligned")]
    fn misaligned_base_rejected() {
        let _ = FrameAlloc::with_base(1 << 12, FramePolicy::Sequential, 7);
    }
}
