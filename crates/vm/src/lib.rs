#![warn(missing_docs)]

//! Virtual-memory substrate: the OS-side machinery a GPU MMU translates
//! against.
//!
//! The paper assumes a fully unified CPU/GPU virtual address space backed
//! by standard x86-64 page tables (Section 6.1: four memory references per
//! walk — PML4, PDP, PD, PT — indexed by 9-bit virtual-address slices).
//! This crate implements that substrate from scratch:
//!
//! * [`addr`] — strongly-typed virtual/physical addresses and page
//!   geometry (4 KB base pages and 2 MB large pages).
//! * [`frame`] — a physical frame allocator with optional address
//!   scrambling, so physically-tagged caches see realistic frame spread.
//! * [`page_table`] — a real 4-level x86-64 radix page table whose nodes
//!   occupy simulated physical frames; a walk yields the exact physical
//!   addresses of the four PTE loads, which is what the paper's
//!   page-walk scheduler coalesces.
//! * [`space`] — per-process address spaces: region mapping, translation,
//!   unmapping with shootdown epochs.
//!
//! # Examples
//!
//! ```
//! use gmmu_vm::space::{AddressSpace, SpaceConfig};
//! use gmmu_vm::addr::PageSize;
//!
//! let mut space = AddressSpace::new(SpaceConfig::default());
//! let region = space.map_region("heap", 1 << 20, PageSize::Base4K)?;
//! let va = region.base.offset(4096 * 3 + 17);
//! let (pa, size) = space.translate(va)?;
//! assert_eq!(size, PageSize::Base4K);
//! assert_eq!(pa.raw() & 0xfff, 17); // page offset preserved
//! # Ok::<(), gmmu_vm::space::VmError>(())
//! ```

pub mod addr;
pub mod frame;
pub mod page_table;
pub mod space;

pub use addr::{PAddr, PageSize, Ppn, VAddr, Vpn};
pub use page_table::{PageTable, Walk, WalkLevel};
pub use space::{AddressSpace, Region, SpaceConfig, VmError};
