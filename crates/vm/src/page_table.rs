//! A real x86-64 four-level radix page table.
//!
//! Every table node occupies one simulated physical frame, so a walk
//! yields the *exact physical addresses* of the PML4/PDP/PD/PT entry
//! loads. That is the raw material of the paper's page-table-walk
//! scheduler (Figures 8–9): consecutive walks share node frames (dedup)
//! and neighbouring PTEs share 128-byte cache lines (16 eight-byte PTEs
//! per line), and the walker hardware exploits both.

use crate::addr::{PAddr, PageSize, Ppn, Vpn, FRAMES_PER_LARGE};
use crate::frame::FrameAlloc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per page-table entry (x86-64).
pub const PTE_BYTES: u64 = 8;
/// Entries per page-table node (9 index bits).
pub const ENTRIES_PER_NODE: usize = 512;

/// One entry in a page-table node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Entry {
    /// Not present.
    #[default]
    None,
    /// Points at a lower-level table node.
    Table(u32),
    /// Terminal mapping. At level 1 this is a 4 KiB page; at level 2,
    /// a 2 MiB page (the PS bit set, in hardware terms).
    Page(Ppn),
}

/// One level of a page-table walk: which level was accessed and the
/// physical address of the entry that was loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkLevel {
    /// Radix level: 4 = PML4, 3 = PDP, 2 = PD, 1 = PT.
    pub level: u32,
    /// Physical address of the 8-byte entry loaded at this level.
    pub pte_paddr: PAddr,
}

const EMPTY_LEVEL: WalkLevel = WalkLevel {
    level: 0,
    pte_paddr: PAddr::new(0),
};

/// The PTE loads of one walk, stored inline. An x86-64 walk touches at
/// most four levels, so a fixed array avoids a heap allocation per walk
/// — the walker performs one of these per in-flight translation per
/// cycle. Dereferences to a slice of the live prefix, so indexing,
/// `iter()`, `len()` and friends work as they did when this was a
/// `Vec<WalkLevel>`.
#[derive(Debug, Clone, Copy)]
pub struct WalkLevels {
    buf: [WalkLevel; 4],
    len: u8,
}

impl WalkLevels {
    /// An empty level list.
    pub const fn new() -> Self {
        Self {
            buf: [EMPTY_LEVEL; 4],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, level: WalkLevel) {
        self.buf[self.len as usize] = level;
        self.len += 1;
    }

    /// The live prefix as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[WalkLevel] {
        &self.buf[..self.len as usize]
    }
}

impl Default for WalkLevels {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for WalkLevels {
    type Target = [WalkLevel];
    #[inline]
    fn deref(&self) -> &[WalkLevel] {
        self.as_slice()
    }
}

impl PartialEq for WalkLevels {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WalkLevels {}

impl<'a> IntoIterator for &'a WalkLevels {
    type Item = &'a WalkLevel;
    type IntoIter = std::slice::Iter<'a, WalkLevel>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The result of walking the table for one virtual page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// The page being translated.
    pub vpn: Vpn,
    /// The PTE loads performed, in order (PML4 first). A walk that hits
    /// a non-present entry stops early but still performed the loads up
    /// to and including the missing entry.
    pub levels: WalkLevels,
    /// The translation, if the page is mapped.
    pub result: Option<(Ppn, PageSize)>,
}

impl Walk {
    /// Number of memory references this walk performs.
    pub fn num_refs(&self) -> usize {
        self.levels.len()
    }
}

/// Errors returned by [`PageTable::map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is already mapped.
    AlreadyMapped,
    /// A 2 MiB mapping was requested at a non-2 MiB-aligned VPN.
    Misaligned,
    /// Physical memory was exhausted while allocating a table node.
    OutOfFrames,
    /// A smaller mapping already exists inside the requested large page
    /// (or a large mapping covers the requested base page).
    Overlap,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::AlreadyMapped => write!(f, "virtual page already mapped"),
            MapError::Misaligned => write!(f, "large page requires 2MB-aligned vpn"),
            MapError::OutOfFrames => write!(f, "out of physical frames"),
            MapError::Overlap => write!(f, "mapping overlaps an existing mapping"),
        }
    }
}

impl std::error::Error for MapError {}

/// `last_leaf` value meaning "no cached leaf". Valid encodings keep the
/// tag strictly below [`LEAF_TAG_LIMIT`]` - 1`, so they can never
/// collide with this sentinel.
const NO_LEAF: u64 = u64::MAX;
/// Leaf-cache node ids must fit in 21 bits (2 M page-table nodes — far
/// beyond any simulated table; larger tables simply skip the cache).
const LEAF_NODE_BITS: u32 = 21;
const LEAF_NODE_LIMIT: u32 = 1 << LEAF_NODE_BITS;
/// Leaf-cache tags (`vpn >> 9`, at most 43 bits for a 52-bit VPN) must
/// stay below this to encode alongside the node id.
const LEAF_TAG_LIMIT: u64 = (1 << (64 - LEAF_NODE_BITS)) - 1;

/// A four-level x86-64 page table rooted at a CR3 frame, stored as a
/// flat arena of nodes.
///
/// # Examples
///
/// ```
/// use gmmu_vm::page_table::PageTable;
/// use gmmu_vm::frame::{FrameAlloc, FramePolicy};
/// use gmmu_vm::addr::{PageSize, Ppn, Vpn};
///
/// let mut frames = FrameAlloc::new(1 << 16, FramePolicy::Sequential);
/// let mut pt = PageTable::new(&mut frames);
/// let data = frames.alloc().unwrap();
/// pt.map(Vpn::new(0x1234), data, PageSize::Base4K, &mut frames)?;
/// let walk = pt.walk(Vpn::new(0x1234));
/// assert_eq!(walk.num_refs(), 4);
/// assert_eq!(walk.result, Some((data, PageSize::Base4K)));
/// # Ok::<(), gmmu_vm::page_table::MapError>(())
/// ```
#[derive(Debug)]
pub struct PageTable {
    /// Physical frame of each node; index is the node id.
    node_frames: Vec<Ppn>,
    /// All node entries in one contiguous arena slab: node `i` owns
    /// `slab[i * ENTRIES_PER_NODE .. (i + 1) * ENTRIES_PER_NODE]`.
    /// Flattening the former per-node `Vec<Entry>` removes a pointer
    /// chase (and an allocation) per level per walk.
    slab: Vec<Entry>,
    mapped_pages: u64,
    /// Last level-1 (PT) node a lookup descended into, packed as
    /// `(vpn >> 9) << LEAF_NODE_BITS | node`. Table nodes are never
    /// reclaimed or re-parented, so a prefix→node association stays
    /// valid for the table's lifetime; only [`Ckpt::load`] rebuilds
    /// nodes and must invalidate it. This makes the replay/rebuild path
    /// (millions of sequential `translate` calls over warm regions) a
    /// one-load lookup. Atomic (relaxed) rather than `Cell` so shared
    /// references stay `Sync` for the parallel sweep engine; a racing
    /// store merely replaces one permanently-valid pair with another.
    last_leaf: AtomicU64,
}

impl Clone for PageTable {
    fn clone(&self) -> Self {
        Self {
            node_frames: self.node_frames.clone(),
            slab: self.slab.clone(),
            mapped_pages: self.mapped_pages,
            last_leaf: AtomicU64::new(self.last_leaf.load(Ordering::Relaxed)),
        }
    }
}

impl PageTable {
    /// Creates an empty table, allocating the root (CR3) frame.
    ///
    /// # Panics
    ///
    /// Panics if the allocator cannot provide the root frame; use
    /// [`PageTable::try_new`] to handle exhaustion as a reportable
    /// outcome instead.
    pub fn new(frames: &mut FrameAlloc) -> Self {
        Self::try_new(frames).expect("no frame for page-table root")
    }

    /// Fallible [`PageTable::new`]: returns [`MapError::OutOfFrames`]
    /// when the allocator cannot provide the root frame.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::OutOfFrames`] on frame exhaustion.
    pub fn try_new(frames: &mut FrameAlloc) -> Result<Self, MapError> {
        let root = frames.alloc().ok_or(MapError::OutOfFrames)?;
        Ok(Self {
            node_frames: vec![root],
            slab: vec![Entry::None; ENTRIES_PER_NODE],
            mapped_pages: 0,
            last_leaf: AtomicU64::new(NO_LEAF),
        })
    }

    /// The physical frame of the root node (the CR3 value).
    pub fn root_frame(&self) -> Ppn {
        self.node_frames[0]
    }

    /// Number of table nodes allocated (all levels).
    pub fn node_count(&self) -> usize {
        self.node_frames.len()
    }

    /// Number of terminal mappings installed (any page size).
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    #[inline]
    fn entry(&self, node: u32, index: usize) -> Entry {
        self.slab[node as usize * ENTRIES_PER_NODE + index]
    }

    #[inline]
    fn set_entry(&mut self, node: u32, index: usize, e: Entry) {
        self.slab[node as usize * ENTRIES_PER_NODE + index] = e;
    }

    /// Appends an empty node to the arena, returning its id.
    fn push_node(&mut self, frame: Ppn) -> u32 {
        let id = self.node_frames.len() as u32;
        self.node_frames.push(frame);
        self.slab
            .resize(self.slab.len() + ENTRIES_PER_NODE, Entry::None);
        id
    }

    fn pte_paddr(&self, node: u32, index: usize) -> PAddr {
        self.node_frames[node as usize]
            .base()
            .offset(index as u64 * PTE_BYTES)
    }

    /// Installs a mapping from `vpn` to `ppn`.
    ///
    /// For [`PageSize::Large2M`], `vpn` and `ppn` must be 2 MiB aligned
    /// and the entry is installed at the PD level.
    ///
    /// # Errors
    ///
    /// See [`MapError`].
    pub fn map(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        size: PageSize,
        frames: &mut FrameAlloc,
    ) -> Result<(), MapError> {
        let terminal_level = match size {
            PageSize::Base4K => 1,
            PageSize::Large2M => {
                if !vpn.raw().is_multiple_of(FRAMES_PER_LARGE)
                    || !ppn.raw().is_multiple_of(FRAMES_PER_LARGE)
                {
                    return Err(MapError::Misaligned);
                }
                2
            }
        };
        let mut node = 0u32;
        for level in (terminal_level + 1..=4).rev() {
            let idx = vpn.index(level);
            node = match self.entry(node, idx) {
                Entry::Table(child) => child,
                Entry::None => {
                    let frame = frames.alloc().ok_or(MapError::OutOfFrames)?;
                    let child = self.push_node(frame);
                    self.set_entry(node, idx, Entry::Table(child));
                    child
                }
                Entry::Page(_) => return Err(MapError::Overlap),
            };
        }
        let idx = vpn.index(terminal_level);
        match self.entry(node, idx) {
            Entry::None => {
                self.set_entry(node, idx, Entry::Page(ppn));
                self.mapped_pages += 1;
                Ok(())
            }
            Entry::Page(_) => Err(MapError::AlreadyMapped),
            Entry::Table(_) => Err(MapError::Overlap),
        }
    }

    /// Looks up a translation without modelling the walk.
    ///
    /// For 2 MiB mappings the returned [`Ppn`] is the *4 KiB frame within
    /// the large page* that contains `vpn`, so callers can treat both page
    /// sizes uniformly at 4 KiB granularity.
    pub fn translate(&self, vpn: Vpn) -> Option<(Ppn, PageSize)> {
        let result = self.translate_impl(vpn);
        debug_assert_eq!(
            result,
            self.walk(vpn).result,
            "translate fast path disagrees with walk for vpn {:#x}",
            vpn.raw()
        );
        result
    }

    /// The non-allocating lookup itself: a one-load fast path through
    /// the last-leaf cache, falling back to a full arena traversal.
    #[inline]
    fn translate_impl(&self, vpn: Vpn) -> Option<(Ppn, PageSize)> {
        let tag = vpn.raw() >> 9;
        let cached = self.last_leaf.load(Ordering::Relaxed);
        if cached != NO_LEAF && cached >> LEAF_NODE_BITS == tag {
            let cached_node = (cached & (LEAF_NODE_LIMIT as u64 - 1)) as u32;
            // The cached PT node covers this VPN's 2 MiB window, and
            // every interior entry above it was `Table`, so the level-1
            // entry alone decides the translation.
            return match self.entry(cached_node, vpn.index(1)) {
                Entry::Page(base) => Some((base, PageSize::Base4K)),
                Entry::None => None,
                Entry::Table(_) => unreachable!("level-1 entries are always terminal or absent"),
            };
        }
        let mut node = 0u32;
        for level in (1..=4).rev() {
            let idx = vpn.index(level);
            if level == 1 && node < LEAF_NODE_LIMIT && tag < LEAF_TAG_LIMIT {
                self.last_leaf
                    .store(tag << LEAF_NODE_BITS | node as u64, Ordering::Relaxed);
            }
            match self.entry(node, idx) {
                Entry::None => return None,
                Entry::Table(child) => node = child,
                Entry::Page(base) => {
                    return match level {
                        2 => Some((
                            Ppn::new(base.raw() + (vpn.raw() & (FRAMES_PER_LARGE - 1))),
                            PageSize::Large2M,
                        )),
                        1 => Some((base, PageSize::Base4K)),
                        _ => unreachable!("terminal entries exist only at levels 1 and 2"),
                    };
                }
            }
        }
        unreachable!("level-1 entries are always terminal or absent")
    }

    /// Performs a full walk, recording each PTE load's physical address.
    pub fn walk(&self, vpn: Vpn) -> Walk {
        let mut levels = WalkLevels::new();
        let mut node = 0u32;
        for level in (1..=4).rev() {
            let idx = vpn.index(level);
            levels.push(WalkLevel {
                level,
                pte_paddr: self.pte_paddr(node, idx),
            });
            match self.entry(node, idx) {
                Entry::None => {
                    return Walk {
                        vpn,
                        levels,
                        result: None,
                    }
                }
                Entry::Table(child) => node = child,
                Entry::Page(base) => {
                    let result = match level {
                        2 => Some((
                            Ppn::new(base.raw() + (vpn.raw() & (FRAMES_PER_LARGE - 1))),
                            PageSize::Large2M,
                        )),
                        1 => Some((base, PageSize::Base4K)),
                        _ => unreachable!(),
                    };
                    return Walk {
                        vpn,
                        levels,
                        result,
                    };
                }
            }
        }
        unreachable!("level-1 entries are always terminal or absent")
    }

    /// Removes a mapping; returns `true` if one existed. Table nodes are
    /// not reclaimed (matching typical OS behaviour under churn), which
    /// is also what keeps the last-leaf cache valid across unmaps.
    pub fn unmap(&mut self, vpn: Vpn) -> bool {
        let mut node = 0u32;
        for level in (1..=4).rev() {
            let idx = vpn.index(level);
            match self.entry(node, idx) {
                Entry::None => return false,
                Entry::Table(child) => node = child,
                Entry::Page(_) if level <= 2 => {
                    self.set_entry(node, idx, Entry::None);
                    self.mapped_pages -= 1;
                    return true;
                }
                Entry::Page(_) => return false,
            }
        }
        false
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for Entry {
    fn save(&self, w: &mut Saver) {
        match self {
            Entry::None => w.u8(0),
            Entry::Table(child) => {
                w.u8(1);
                w.u32(*child);
            }
            Entry::Page(ppn) => {
                w.u8(2);
                ppn.save(w);
            }
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => Entry::None,
            1 => Entry::Table(r.u32()?),
            2 => {
                let mut ppn = Ppn::default();
                ppn.load(r)?;
                Entry::Page(ppn)
            }
            _ => return Err(CkptError::Corrupt("unknown page-table entry tag")),
        };
        Ok(())
    }
}

impl Ckpt for PageTable {
    /// Byte-compatible with the pre-arena layout: node count, then per
    /// node its frame and a length-prefixed entry list (always
    /// [`ENTRIES_PER_NODE`]), then the mapped-page count.
    fn save(&self, w: &mut Saver) {
        w.usize(self.node_frames.len());
        for (i, frame) in self.node_frames.iter().enumerate() {
            frame.save(w);
            w.usize(ENTRIES_PER_NODE);
            for e in &self.slab[i * ENTRIES_PER_NODE..(i + 1) * ENTRIES_PER_NODE] {
                e.save(w);
            }
        }
        w.u64(self.mapped_pages);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.node_frames.clear();
        self.node_frames.reserve(n);
        self.slab.clear();
        self.slab.reserve(n * ENTRIES_PER_NODE);
        for _ in 0..n {
            let mut frame = Ppn::default();
            frame.load(r)?;
            self.node_frames.push(frame);
            let len = r.usize()?;
            if len != ENTRIES_PER_NODE {
                return Err(CkptError::Corrupt("page-table node entry count"));
            }
            for _ in 0..len {
                let mut e = Entry::None;
                e.load(r)?;
                self.slab.push(e);
            }
        }
        if self.node_frames.is_empty() {
            return Err(CkptError::Corrupt("page table without a root node"));
        }
        self.mapped_pages = r.u64()?;
        // Node ids were rebuilt from scratch; drop the leaf cache.
        self.last_leaf.store(NO_LEAF, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FramePolicy;

    fn setup() -> (PageTable, FrameAlloc) {
        let mut frames = FrameAlloc::new(1 << 18, FramePolicy::Sequential);
        let pt = PageTable::new(&mut frames);
        (pt, frames)
    }

    #[test]
    fn walk_of_unmapped_page_stops_at_missing_level() {
        let (pt, _) = setup();
        let walk = pt.walk(Vpn::new(0x42));
        assert_eq!(walk.num_refs(), 1); // PML4 entry missing
        assert_eq!(walk.result, None);
    }

    #[test]
    fn map_then_translate_roundtrip() {
        let (mut pt, mut frames) = setup();
        let data = frames.alloc().unwrap();
        pt.map(Vpn::new(0xabc), data, PageSize::Base4K, &mut frames)
            .unwrap();
        assert_eq!(
            pt.translate(Vpn::new(0xabc)),
            Some((data, PageSize::Base4K))
        );
        assert_eq!(pt.translate(Vpn::new(0xabd)), None);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn double_map_rejected() {
        let (mut pt, mut frames) = setup();
        let d1 = frames.alloc().unwrap();
        let d2 = frames.alloc().unwrap();
        pt.map(Vpn::new(5), d1, PageSize::Base4K, &mut frames)
            .unwrap();
        assert_eq!(
            pt.map(Vpn::new(5), d2, PageSize::Base4K, &mut frames),
            Err(MapError::AlreadyMapped)
        );
    }

    #[test]
    fn walk_visits_four_levels_for_base_pages() {
        let (mut pt, mut frames) = setup();
        let data = frames.alloc().unwrap();
        let vpn = Vpn::new((0xb9 << 27) | (0x0c << 18) | (0xac << 9) | 0x03);
        pt.map(vpn, data, PageSize::Base4K, &mut frames).unwrap();
        let walk = pt.walk(vpn);
        assert_eq!(walk.num_refs(), 4);
        let levels: Vec<u32> = walk.levels.iter().map(|l| l.level).collect();
        assert_eq!(levels, vec![4, 3, 2, 1]);
        assert_eq!(walk.result, Some((data, PageSize::Base4K)));
    }

    #[test]
    fn figure8_walks_share_upper_level_entries() {
        // The paper's Figure 8: three pages sharing PML4 and PDP entries;
        // the first two also share the PD entry.
        let (mut pt, mut frames) = setup();
        let mk =
            |l4: u64, l3: u64, l2: u64, l1: u64| Vpn::new((l4 << 27) | (l3 << 18) | (l2 << 9) | l1);
        let pages = [
            mk(0xb9, 0x0c, 0xac, 0x03),
            mk(0xb9, 0x0c, 0xac, 0x04),
            mk(0xb9, 0x0c, 0xad, 0x05),
        ];
        for p in pages {
            let f = frames.alloc().unwrap();
            pt.map(p, f, PageSize::Base4K, &mut frames).unwrap();
        }
        let walks: Vec<Walk> = pages.iter().map(|&p| pt.walk(p)).collect();
        // PML4 and PDP loads identical across all three walks.
        for lvl in 0..2 {
            assert_eq!(walks[0].levels[lvl], walks[1].levels[lvl]);
            assert_eq!(walks[1].levels[lvl], walks[2].levels[lvl]);
        }
        // First two walks share the PD *entry address region* but the PD
        // loads differ only in index (same node frame).
        let pd0 = walks[0].levels[2].pte_paddr;
        let pd2 = walks[2].levels[2].pte_paddr;
        assert_eq!(pd0.raw() >> 12, pd2.raw() >> 12, "same PD node frame");
        assert_ne!(pd0, pd2);
        // PT loads of walks 0 and 1 land on the same 128-byte line
        // (indices 0x03 and 0x04 → bytes 24 and 32).
        let l1_0 = walks[0].levels[3].pte_paddr;
        let l1_1 = walks[1].levels[3].pte_paddr;
        assert_eq!(l1_0.line(7), l1_1.line(7));
    }

    #[test]
    fn large_page_maps_at_pd_and_walks_three_levels() {
        let (mut pt, mut frames) = setup();
        let big = frames.alloc_large().unwrap();
        let vpn = Vpn::new(512 * 7);
        pt.map(vpn, big, PageSize::Large2M, &mut frames).unwrap();
        // Any base page inside the large page translates.
        let inner = Vpn::new(512 * 7 + 13);
        let (ppn, size) = pt.translate(inner).unwrap();
        assert_eq!(size, PageSize::Large2M);
        assert_eq!(ppn.raw(), big.raw() + 13);
        assert_eq!(pt.walk(inner).num_refs(), 3);
    }

    #[test]
    fn large_page_alignment_enforced() {
        let (mut pt, mut frames) = setup();
        let big = frames.alloc_large().unwrap();
        assert_eq!(
            pt.map(Vpn::new(3), big, PageSize::Large2M, &mut frames),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn base_page_inside_large_page_is_overlap() {
        let (mut pt, mut frames) = setup();
        let big = frames.alloc_large().unwrap();
        pt.map(Vpn::new(0), big, PageSize::Large2M, &mut frames)
            .unwrap();
        let f = frames.alloc().unwrap();
        assert_eq!(
            pt.map(Vpn::new(5), f, PageSize::Base4K, &mut frames),
            Err(MapError::Overlap)
        );
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut pt, mut frames) = setup();
        let f = frames.alloc().unwrap();
        pt.map(Vpn::new(77), f, PageSize::Base4K, &mut frames)
            .unwrap();
        assert!(pt.unmap(Vpn::new(77)));
        assert!(!pt.unmap(Vpn::new(77)));
        assert_eq!(pt.translate(Vpn::new(77)), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn leaf_cache_tracks_unmap_and_remap() {
        let (mut pt, mut frames) = setup();
        let f1 = frames.alloc().unwrap();
        pt.map(Vpn::new(0x40), f1, PageSize::Base4K, &mut frames)
            .unwrap();
        // Prime the cache, then change the PT node underneath it.
        assert_eq!(pt.translate(Vpn::new(0x40)), Some((f1, PageSize::Base4K)));
        assert!(pt.unmap(Vpn::new(0x40)));
        assert_eq!(pt.translate(Vpn::new(0x40)), None, "stale cache hit");
        let f2 = frames.alloc().unwrap();
        pt.map(Vpn::new(0x41), f2, PageSize::Base4K, &mut frames)
            .unwrap();
        assert_eq!(pt.translate(Vpn::new(0x41)), Some((f2, PageSize::Base4K)));
    }

    #[test]
    fn leaf_cache_does_not_shadow_large_pages() {
        let (mut pt, mut frames) = setup();
        let f = frames.alloc().unwrap();
        // Base page in one 2 MiB window primes the cache...
        pt.map(Vpn::new(0), f, PageSize::Base4K, &mut frames)
            .unwrap();
        assert!(pt.translate(Vpn::new(0)).is_some());
        // ...then a large page in the *next* window must miss it.
        let big = frames.alloc_large().unwrap();
        pt.map(Vpn::new(512), big, PageSize::Large2M, &mut frames)
            .unwrap();
        let (ppn, size) = pt.translate(Vpn::new(512 + 9)).unwrap();
        assert_eq!(size, PageSize::Large2M);
        assert_eq!(ppn.raw(), big.raw() + 9);
    }

    #[test]
    // `get(0)` is the point under test: the inline `WalkLevels` must keep
    // the slice API callers used when `levels` was a `Vec`.
    #[allow(clippy::get_first)]
    fn walk_levels_deref_like_a_vec() {
        let (mut pt, mut frames) = setup();
        let f = frames.alloc().unwrap();
        pt.map(Vpn::new(0x77), f, PageSize::Base4K, &mut frames)
            .unwrap();
        let w = pt.walk(Vpn::new(0x77));
        assert_eq!(w.levels.len(), 4);
        assert_eq!(w.levels.iter().count(), 4);
        assert_eq!(w.levels[0].level, 4);
        assert_eq!(w.levels.last().unwrap().level, 1);
        assert_eq!(w.levels.first(), w.levels.get(0));
        let again = pt.walk(Vpn::new(0x77));
        assert_eq!(w, again);
    }

    #[test]
    fn root_frame_exhaustion_is_reportable() {
        let mut frames = FrameAlloc::new(1 << 9, FramePolicy::Sequential);
        while frames.alloc().is_some() {}
        assert!(matches!(
            PageTable::try_new(&mut frames),
            Err(MapError::OutOfFrames)
        ));
    }

    #[test]
    fn sixteen_ptes_share_a_cache_line() {
        // 128-byte lines hold 16 8-byte PTEs — the property the PTW
        // scheduler's same-line grouping relies on.
        let (mut pt, mut frames) = setup();
        for i in 0..16u64 {
            let f = frames.alloc().unwrap();
            pt.map(Vpn::new(i), f, PageSize::Base4K, &mut frames)
                .unwrap();
        }
        let lines: std::collections::HashSet<u64> = (0..16)
            .map(|i| pt.walk(Vpn::new(i)).levels[3].pte_paddr.line(7))
            .collect();
        assert_eq!(lines.len(), 1);
        let line17 = pt.walk(Vpn::new(0)).levels[3].pte_paddr.line(7);
        let f = frames.alloc().unwrap();
        pt.map(Vpn::new(16), f, PageSize::Base4K, &mut frames)
            .unwrap();
        assert_ne!(pt.walk(Vpn::new(16)).levels[3].pte_paddr.line(7), line17);
    }
}
