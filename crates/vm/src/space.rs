//! Per-process address spaces.
//!
//! An [`AddressSpace`] owns a page table and a frame allocator and hands
//! out named virtual regions, eagerly populated by default (the paper's
//! workloads never demand-fault during the timed kernel). For hUMA-style
//! GPU page faults a region's pages can be released again with
//! [`AddressSpace::unmap_pages_where`] and faulted back in one at a time
//! with [`AddressSpace::map_page`]. Unmapping bumps a shootdown epoch
//! that TLB models observe to invalidate stale entries.

use crate::addr::{PAddr, PageSize, VAddr, Vpn, FRAMES_PER_LARGE, PAGE_BYTES};
use crate::frame::{FrameAlloc, FramePolicy};
use crate::page_table::{MapError, PageTable, Walk};

/// Configuration for a new [`AddressSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceConfig {
    /// Number of 4 KiB physical frames (power of two). The default, 2^21
    /// (8 GiB), is far larger than any workload in the suite so frame
    /// exhaustion never perturbs an experiment.
    pub phys_frames: u64,
    /// Frame allocation policy.
    pub policy: FramePolicy,
    /// First virtual address handed to regions.
    pub vbase: u64,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        Self {
            phys_frames: 1 << 21,
            policy: FramePolicy::Scrambled,
            // 1 GiB: keeps typical suites inside a handful of PDP entries,
            // like a real process heap.
            vbase: 0x4000_0000,
        }
    }
}

/// A named, mapped virtual region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    /// Region name (for diagnostics).
    pub name: String,
    /// First virtual address.
    pub base: VAddr,
    /// Mapped length in bytes (rounded up to the page size).
    pub bytes: u64,
    /// Page size used for the mapping.
    pub page_size: PageSize,
}

impl Region {
    /// Virtual address `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `offset` is out of bounds.
    #[inline]
    pub fn at(&self, offset: u64) -> VAddr {
        debug_assert!(offset < self.bytes, "region offset out of bounds");
        self.base.offset(offset)
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> VAddr {
        self.base.offset(self.bytes)
    }

    /// Number of 4 KiB pages the region spans.
    pub fn num_pages(&self) -> u64 {
        self.bytes / PAGE_BYTES
    }
}

/// Errors produced by address-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Physical memory exhausted.
    OutOfMemory,
    /// Translation requested for an unmapped address.
    Unmapped(VAddr),
    /// Mapping failed structurally (overlap, misalignment).
    Map(MapError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::OutOfMemory => write!(f, "out of physical frames"),
            VmError::Unmapped(va) => write!(f, "unmapped virtual address {va}"),
            VmError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MapError> for VmError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::OutOfFrames => VmError::OutOfMemory,
            other => VmError::Map(other),
        }
    }
}

/// A process address space: page table + physical frames + regions.
///
/// # Examples
///
/// ```
/// use gmmu_vm::{AddressSpace, SpaceConfig, PageSize};
/// let mut space = AddressSpace::new(SpaceConfig::default());
/// let r = space.map_region("nodes", 64 * 1024, PageSize::Base4K)?;
/// assert_eq!(r.num_pages(), 16);
/// assert!(space.translate(r.at(1000)).is_ok());
/// # Ok::<(), gmmu_vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    config: SpaceConfig,
    /// Address-space identifier. Tenant `asid` allocates frames from the
    /// physical window `asid * phys_frames ..`, so two spaces on one GPU
    /// can never alias a frame — data or page-table node.
    asid: u16,
    table: PageTable,
    frames: FrameAlloc,
    regions: Vec<Region>,
    next_vbase: u64,
    shootdown_epoch: u64,
}

impl AddressSpace {
    /// Creates an empty address space with ASID 0.
    ///
    /// # Panics
    ///
    /// Panics if `config.phys_frames` cannot even hold the page-table
    /// root; use [`AddressSpace::try_new`] to report that instead.
    pub fn new(config: SpaceConfig) -> Self {
        Self::try_new(config).expect("no frame for page-table root")
    }

    /// Creates an empty address space owning the `asid`-th physical
    /// window. ASID 0 is byte-identical to [`AddressSpace::new`].
    ///
    /// # Panics
    ///
    /// Panics on frame exhaustion, like [`AddressSpace::new`].
    pub fn with_asid(config: SpaceConfig, asid: u16) -> Self {
        Self::try_with_asid(config, asid).expect("no frame for page-table root")
    }

    /// Fallible [`AddressSpace::new`].
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when the allocator cannot provide
    /// the page-table root frame.
    pub fn try_new(config: SpaceConfig) -> Result<Self, VmError> {
        Self::try_with_asid(config, 0)
    }

    /// Fallible [`AddressSpace::with_asid`].
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when the allocator cannot provide
    /// the page-table root frame.
    pub fn try_with_asid(config: SpaceConfig, asid: u16) -> Result<Self, VmError> {
        // `phys_frames` is a power of two >= 512, so the per-tenant base
        // is always 2 MiB-aligned.
        let base = asid as u64 * config.phys_frames;
        let mut frames = FrameAlloc::with_base(config.phys_frames, config.policy, base);
        let table = PageTable::try_new(&mut frames)?;
        Ok(Self {
            config,
            asid,
            table,
            frames,
            regions: Vec::new(),
            next_vbase: config.vbase,
            shootdown_epoch: 0,
        })
    }

    /// This space's address-space identifier.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// The configuration this space was created with. A trace frontend
    /// uses this to rebuild an identically laid-out space (same frame
    /// policy, same region bases) in another process.
    pub fn config(&self) -> SpaceConfig {
        self.config
    }

    /// Maps a new region of at least `bytes` bytes with the given page
    /// size, eagerly populating every page.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when physical frames run out and
    /// [`VmError::Map`] on internal overlap (which indicates a bug).
    pub fn map_region(
        &mut self,
        name: &str,
        bytes: u64,
        page_size: PageSize,
    ) -> Result<Region, VmError> {
        let granule = page_size.bytes();
        let rounded = bytes.div_ceil(granule) * granule;
        // Regions are 2 MiB aligned with a guard gap, so large and base
        // pages never share a PD entry by accident.
        let align = crate::addr::LARGE_PAGE_BYTES;
        let base = self.next_vbase.div_ceil(align) * align;
        self.next_vbase = base + rounded + align;

        match page_size {
            PageSize::Base4K => {
                let first_vpn = base >> crate::addr::PAGE_SHIFT;
                for i in 0..rounded / PAGE_BYTES {
                    let frame = self.frames.alloc().ok_or(VmError::OutOfMemory)?;
                    self.table.map(
                        Vpn::new(first_vpn + i),
                        frame,
                        PageSize::Base4K,
                        &mut self.frames,
                    )?;
                }
            }
            PageSize::Large2M => {
                let first_vpn = base >> crate::addr::PAGE_SHIFT;
                for i in 0..rounded / crate::addr::LARGE_PAGE_BYTES {
                    let frame = self.frames.alloc_large().ok_or(VmError::OutOfMemory)?;
                    self.table.map(
                        Vpn::new(first_vpn + i * FRAMES_PER_LARGE),
                        frame,
                        PageSize::Large2M,
                        &mut self.frames,
                    )?;
                }
            }
        }
        let region = Region {
            name: name.to_owned(),
            base: VAddr::new(base),
            bytes: rounded,
            page_size,
        };
        self.regions.push(region.clone());
        Ok(region)
    }

    /// Translates a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Unmapped`] for addresses outside any region.
    pub fn translate(&self, va: VAddr) -> Result<(PAddr, PageSize), VmError> {
        let (ppn, size) = self
            .table
            .translate(va.vpn())
            .ok_or(VmError::Unmapped(va))?;
        Ok((ppn.base().offset(va.page_offset()), size))
    }

    /// Performs a timed page-table walk for the MMU (records PTE load
    /// addresses).
    pub fn walk(&self, vpn: Vpn) -> Walk {
        self.table.walk(vpn)
    }

    /// The regions mapped so far, in mapping order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total mapped bytes across regions.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Number of page-table node frames (a proxy for page-table memory).
    pub fn page_table_nodes(&self) -> usize {
        self.table.node_count()
    }

    /// Unmaps a whole region by name; returns `true` if it existed.
    /// Bumps the shootdown epoch so TLBs flush (Section 6.2: GPU TLBs
    /// are flushed when the owning CPU changes the page table).
    pub fn unmap_region(&mut self, name: &str) -> bool {
        let Some(pos) = self.regions.iter().position(|r| r.name == name) else {
            return false;
        };
        let region = self.regions.remove(pos);
        let step = region.page_size.bytes() / PAGE_BYTES;
        let first = region.base.vpn().raw();
        let mut vpn = first;
        while vpn < first + region.num_pages() {
            self.table.unmap(Vpn::new(vpn));
            vpn += step;
        }
        self.shootdown_epoch += 1;
        true
    }

    /// Monotonic counter incremented on every shootdown-worthy change.
    pub fn shootdown_epoch(&self) -> u64 {
        self.shootdown_epoch
    }

    /// The region containing `va`, if any.
    pub fn region_containing(&self, va: VAddr) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| r.base.raw() <= va.raw() && va.raw() < r.end().raw())
    }

    /// Releases the translations of every page for which `keep_unmapped`
    /// returns `true`, across all regions, *without* removing the regions
    /// themselves — the pages demand-fault back in via
    /// [`AddressSpace::map_page`]. Freed 4 KiB frames return to the
    /// allocator; 2 MiB frames are not reclaimed (the allocator has no
    /// large free list, and the simulator never stores page contents).
    ///
    /// Bumps the shootdown epoch once if anything was unmapped. Returns
    /// the number of translations removed.
    pub fn unmap_pages_where(&mut self, mut keep_unmapped: impl FnMut(Vpn) -> bool) -> u64 {
        let spans: Vec<(u64, u64, u64, PageSize)> = self
            .regions
            .iter()
            .map(|r| {
                let step = r.page_size.bytes() / PAGE_BYTES;
                (r.base.vpn().raw(), r.num_pages(), step, r.page_size)
            })
            .collect();
        let mut removed = 0u64;
        for (first, pages, step, size) in spans {
            let mut vpn = first;
            while vpn < first + pages {
                let v = Vpn::new(vpn);
                if keep_unmapped(v) {
                    let frame = self.table.translate(v).map(|(ppn, _)| ppn);
                    if self.table.unmap(v) {
                        removed += 1;
                        if size == PageSize::Base4K {
                            if let Some(ppn) = frame {
                                self.frames.free(ppn);
                            }
                        }
                    }
                }
                vpn += step;
            }
        }
        if removed > 0 {
            self.shootdown_epoch += 1;
        }
        removed
    }

    /// Releases every translation while keeping the regions: the fully
    /// demand-paged starting state (zero pre-mapped pages).
    pub fn unmap_all_pages(&mut self) -> u64 {
        self.unmap_pages_where(|_| true)
    }

    /// Services a page fault: installs a translation for the page of
    /// `vpn` inside an existing region. Idempotent — mapping an
    /// already-mapped page succeeds without change, so concurrent faults
    /// on the same page from several cores coalesce naturally.
    ///
    /// Does *not* bump the shootdown epoch: installing a translation
    /// cannot make a cached TLB entry stale.
    ///
    /// # Errors
    ///
    /// [`VmError::Unmapped`] if `vpn` lies outside every region,
    /// [`VmError::OutOfMemory`] on frame exhaustion.
    pub fn map_page(&mut self, vpn: Vpn) -> Result<PageSize, VmError> {
        let region = self
            .region_containing(vpn.base())
            .ok_or_else(|| VmError::Unmapped(vpn.base()))?;
        let size = region.page_size;
        if self.table.translate(vpn).is_some() {
            return Ok(size);
        }
        match size {
            PageSize::Base4K => {
                let frame = self.frames.alloc().ok_or(VmError::OutOfMemory)?;
                self.table
                    .map(vpn, frame, PageSize::Base4K, &mut self.frames)?;
            }
            PageSize::Large2M => {
                let aligned = Vpn::new(vpn.raw() & !(FRAMES_PER_LARGE - 1));
                let frame = self.frames.alloc_large().ok_or(VmError::OutOfMemory)?;
                self.table
                    .map(aligned, frame, PageSize::Large2M, &mut self.frames)?;
            }
        }
        Ok(size)
    }

    /// Remaps an existing region onto fresh physical frames in place —
    /// the mid-run `unmap`/`remap` a CPU performs when it migrates pages.
    /// Virtual addresses are unchanged; every page ends up mapped (even
    /// if the region was partially demand-paged) and the shootdown epoch
    /// is bumped so GPU TLBs flush. Returns `Ok(false)` if no region has
    /// that name.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] on frame exhaustion.
    pub fn remap_region(&mut self, name: &str) -> Result<bool, VmError> {
        let Some(region) = self.regions.iter().find(|r| r.name == name).cloned() else {
            return Ok(false);
        };
        let step = region.page_size.bytes() / PAGE_BYTES;
        let first = region.base.vpn().raw();
        let mut vpn = first;
        while vpn < first + region.num_pages() {
            let v = Vpn::new(vpn);
            let old = self.table.translate(v).map(|(ppn, _)| ppn);
            self.table.unmap(v);
            match region.page_size {
                PageSize::Base4K => {
                    // Allocate before freeing the old frame, or the LIFO
                    // free list would hand the same frame straight back.
                    let frame = self.frames.alloc().ok_or(VmError::OutOfMemory)?;
                    self.table
                        .map(v, frame, PageSize::Base4K, &mut self.frames)?;
                    if let Some(ppn) = old {
                        self.frames.free(ppn);
                    }
                }
                PageSize::Large2M => {
                    let frame = self.frames.alloc_large().ok_or(VmError::OutOfMemory)?;
                    self.table
                        .map(v, frame, PageSize::Large2M, &mut self.frames)?;
                }
            }
            vpn += step;
        }
        self.shootdown_epoch += 1;
        Ok(true)
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for SpaceConfig {
    fn save(&self, w: &mut Saver) {
        w.u64(self.phys_frames);
        self.policy.save(w);
        w.u64(self.vbase);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.phys_frames = r.u64()?;
        self.policy.load(r)?;
        self.vbase = r.u64()?;
        Ok(())
    }
}

impl Ckpt for Region {
    fn save(&self, w: &mut Saver) {
        w.str(&self.name);
        self.base.save(w);
        w.u64(self.bytes);
        self.page_size.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.name = r.str()?.to_owned();
        self.base.load(r)?;
        self.bytes = r.u64()?;
        self.page_size.load(r)
    }
}

impl Ckpt for AddressSpace {
    /// Serializes the *full* mapping state — page-table nodes, allocator
    /// cursors, regions, and the shootdown epoch — so demand paging and
    /// remap storms resume with the exact frame-allocation future the
    /// uninterrupted run would have had.
    fn save(&self, w: &mut Saver) {
        w.u16(self.asid);
        self.table.save(w);
        self.frames.save(w);
        self.regions.save(w);
        w.u64(self.next_vbase);
        w.u64(self.shootdown_epoch);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let asid = r.u16()?;
        if asid != self.asid {
            return Err(CkptError::Corrupt("address-space ASID mismatch"));
        }
        self.table.load(r)?;
        self.frames.load(r)?;
        self.regions.load(r)?;
        self.next_vbase = r.u64()?;
        self.shootdown_epoch = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(SpaceConfig::default())
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut s = space();
        let a = s.map_region("a", 10_000, PageSize::Base4K).unwrap();
        let b = s.map_region("b", 10_000, PageSize::Base4K).unwrap();
        assert!(a.end().raw() <= b.base.raw());
    }

    #[test]
    fn translation_preserves_offsets() {
        let mut s = space();
        let r = s.map_region("r", 1 << 20, PageSize::Base4K).unwrap();
        for off in [0u64, 1, 4095, 4096, 123_456] {
            let (pa, _) = s.translate(r.at(off)).unwrap();
            assert_eq!(pa.raw() & 0xfff, (r.base.raw() + off) & 0xfff);
        }
    }

    #[test]
    fn distinct_pages_map_to_distinct_frames() {
        let mut s = space();
        let r = s
            .map_region("r", 64 * PAGE_BYTES, PageSize::Base4K)
            .unwrap();
        let mut frames = std::collections::HashSet::new();
        for p in 0..r.num_pages() {
            let (pa, _) = s.translate(r.at(p * PAGE_BYTES)).unwrap();
            assert!(frames.insert(pa.ppn().raw()));
        }
    }

    #[test]
    fn unmapped_address_errors() {
        let s = space();
        let err = s.translate(VAddr::new(0x999_0000)).unwrap_err();
        assert!(matches!(err, VmError::Unmapped(_)));
    }

    #[test]
    fn large_page_region_translates_everywhere() {
        let mut s = space();
        let r = s.map_region("big", 6 << 20, PageSize::Large2M).unwrap();
        assert_eq!(r.bytes, 6 << 20);
        let (_, size) = s.translate(r.at(3 << 20)).unwrap();
        assert_eq!(size, PageSize::Large2M);
        // Walk is one level shorter.
        assert_eq!(s.walk(r.at(0).vpn()).num_refs(), 3);
    }

    #[test]
    fn large_pages_are_physically_contiguous_within() {
        let mut s = space();
        let r = s.map_region("big", 2 << 20, PageSize::Large2M).unwrap();
        let (pa0, _) = s.translate(r.at(0)).unwrap();
        let (pa1, _) = s.translate(r.at(PAGE_BYTES * 13 + 5)).unwrap();
        assert_eq!(pa1.raw() - pa0.raw(), PAGE_BYTES * 13 + 5);
    }

    #[test]
    fn unmap_region_bumps_epoch_and_removes_translations() {
        let mut s = space();
        let r = s
            .map_region("gone", 8 * PAGE_BYTES, PageSize::Base4K)
            .unwrap();
        assert_eq!(s.shootdown_epoch(), 0);
        assert!(s.unmap_region("gone"));
        assert_eq!(s.shootdown_epoch(), 1);
        assert!(s.translate(r.at(0)).is_err());
        assert!(!s.unmap_region("gone"));
    }

    #[test]
    fn rounding_covers_partial_pages() {
        let mut s = space();
        let r = s
            .map_region("odd", PAGE_BYTES + 1, PageSize::Base4K)
            .unwrap();
        assert_eq!(r.num_pages(), 2);
        assert!(s.translate(r.at(PAGE_BYTES)).is_ok());
    }

    #[test]
    fn demand_paging_roundtrip() {
        let mut s = space();
        let r = s
            .map_region("d", 16 * PAGE_BYTES, PageSize::Base4K)
            .unwrap();
        assert_eq!(s.unmap_all_pages(), 16);
        assert_eq!(s.shootdown_epoch(), 1);
        assert!(s.translate(r.at(0)).is_err());
        assert_eq!(s.regions().len(), 1, "regions persist under demand paging");
        let size = s.map_page(r.at(5 * PAGE_BYTES).vpn()).unwrap();
        assert_eq!(size, PageSize::Base4K);
        assert!(s.translate(r.at(5 * PAGE_BYTES)).is_ok());
        assert!(s.translate(r.at(6 * PAGE_BYTES)).is_err());
        // Idempotent: a second fault on the same page coalesces.
        s.map_page(r.at(5 * PAGE_BYTES).vpn()).unwrap();
        assert_eq!(s.shootdown_epoch(), 1, "map_page never bumps the epoch");
    }

    #[test]
    fn map_page_outside_regions_is_unmapped() {
        let mut s = space();
        let err = s.map_page(VAddr::new(0x999_0000).vpn()).unwrap_err();
        assert!(matches!(err, VmError::Unmapped(_)));
    }

    #[test]
    fn remap_region_moves_frames_and_bumps_epoch() {
        let mut s = space();
        let r = s.map_region("m", 8 * PAGE_BYTES, PageSize::Base4K).unwrap();
        let (pa0, _) = s.translate(r.at(0)).unwrap();
        assert!(s.remap_region("m").unwrap());
        assert_eq!(s.shootdown_epoch(), 1);
        let (pa1, _) = s.translate(r.at(0)).unwrap();
        assert_ne!(pa0.ppn().raw(), pa1.ppn().raw(), "remap must move frames");
        assert!(!s.remap_region("absent").unwrap());
    }

    #[test]
    fn demand_paged_large_region_faults_whole_large_pages() {
        let mut s = space();
        let r = s.map_region("big", 4 << 20, PageSize::Large2M).unwrap();
        assert!(s.unmap_all_pages() > 0);
        assert!(s.translate(r.at(0)).is_err());
        let size = s.map_page(r.at((1 << 20) + 123).vpn()).unwrap();
        assert_eq!(size, PageSize::Large2M);
        assert!(s.translate(r.at(0)).is_ok(), "whole 2MB page mapped");
        assert!(s.translate(r.at(2 << 20)).is_err());
    }

    #[test]
    fn tenant_spaces_never_share_frames() {
        let cfg = SpaceConfig::default();
        let mut spaces: Vec<AddressSpace> = (0..3u16)
            .map(|asid| AddressSpace::with_asid(cfg, asid))
            .collect();
        let regions: Vec<Region> = spaces
            .iter_mut()
            .map(|s| {
                s.map_region("r", 64 * PAGE_BYTES, PageSize::Base4K)
                    .unwrap()
            })
            .collect();
        let mut frames = std::collections::HashSet::new();
        for (s, r) in spaces.iter().zip(&regions) {
            let window = s.asid() as u64 * cfg.phys_frames..(s.asid() as u64 + 1) * cfg.phys_frames;
            for p in 0..r.num_pages() {
                let (pa, _) = s.translate(r.at(p * PAGE_BYTES)).unwrap();
                assert!(
                    window.contains(&pa.ppn().raw()),
                    "asid {} frame {} escaped its window",
                    s.asid(),
                    pa.ppn().raw()
                );
                assert!(frames.insert(pa.ppn().raw()), "cross-tenant frame alias");
            }
            // Page-table node frames live in the window too.
            for lvl in &s.walk(r.at(0).vpn()).levels {
                let node_frame = lvl.pte_paddr.raw() >> 12;
                assert!(
                    window.contains(&node_frame),
                    "asid {} page-table node escaped its window",
                    s.asid()
                );
            }
        }
    }

    #[test]
    fn asid_zero_space_matches_legacy_layout() {
        let mut legacy = AddressSpace::new(SpaceConfig::default());
        let mut tenant0 = AddressSpace::with_asid(SpaceConfig::default(), 0);
        let a = legacy
            .map_region("r", 32 * PAGE_BYTES, PageSize::Base4K)
            .unwrap();
        let b = tenant0
            .map_region("r", 32 * PAGE_BYTES, PageSize::Base4K)
            .unwrap();
        assert_eq!(a, b);
        for p in 0..a.num_pages() {
            assert_eq!(
                legacy.translate(a.at(p * PAGE_BYTES)).unwrap().0.raw(),
                tenant0.translate(b.at(p * PAGE_BYTES)).unwrap().0.raw(),
                "asid-0 frame sequence must be byte-identical to legacy"
            );
        }
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut s = AddressSpace::new(SpaceConfig {
            phys_frames: 1 << 9,
            policy: FramePolicy::Sequential,
            vbase: 0x4000_0000,
        });
        let err = s.map_region("huge", 1 << 24, PageSize::Base4K).unwrap_err();
        assert_eq!(err, VmError::OutOfMemory);
    }
}
