//! Graph analytics with branch divergence: thread block compaction
//! meets address translation (the paper's Section 8 story, on bfs).
//!
//! Dynamic warp formation recovers SIMD lanes lost to divergent
//! branches — but blindly mixing threads from different warps scatters
//! each new warp's memory accesses across more pages, raising TLB
//! pressure. The Common Page Matrix steers compaction toward threads
//! whose home warps share PTEs.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use gmmu::prelude::*;
use gmmu_simt::gpu::run_kernel;

fn main() {
    let workload = build(Bench::Bfs, Scale::Tiny, 7);
    println!(
        "frontier expansion over a {} MB CSR graph\n",
        workload.space.mapped_bytes() >> 20
    );

    let base_cfg = || {
        let mut cfg = GpuConfig::experiment_scale(MmuModel::Ideal);
        cfg.n_cores = 2;
        cfg.mem.channels = 1;
        cfg
    };
    let ideal = run_kernel(base_cfg(), workload.kernel.as_ref(), &workload.space);

    let mut table = Table::new(
        "bfs: compaction × translation",
        &[
            "configuration",
            "speedup",
            "warp insns",
            "page div",
            "dwarps formed",
        ],
    );
    let cases: [(&str, MmuModel, Option<TbcConfig>); 5] = [
        ("baseline (no TLB)", MmuModel::Ideal, None),
        ("TBC (no TLB)", MmuModel::Ideal, Some(TbcConfig::baseline())),
        ("augmented MMU, no TBC", MmuModel::augmented(), None),
        (
            "augmented MMU + TBC",
            MmuModel::augmented(),
            Some(TbcConfig::baseline()),
        ),
        (
            "augmented MMU + TLB-aware TBC",
            MmuModel::augmented(),
            Some(TbcConfig::tlb_aware(3)),
        ),
    ];
    for (name, mmu, tbc) in cases {
        let mut cfg = base_cfg();
        cfg.mmu = mmu;
        cfg.tbc = tbc;
        let s = run_kernel(cfg, workload.kernel.as_ref(), &workload.space);
        table.row(vec![
            name.into(),
            s.speedup_vs(&ideal).into(),
            s.instructions.into(),
            s.page_divergence.mean().into(),
            s.dwarps_formed.into(),
        ]);
    }
    println!("{table}");
    println!(
        "reading: TBC cuts warp instructions (compacted lanes), but raises page\n\
         divergence; the CPM-steered variant pulls divergence back toward the\n\
         uncompacted level while keeping most of the lane savings."
    );
}
