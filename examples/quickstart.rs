//! Quickstart: build a workload, run it on three MMU designs, compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gmmu::prelude::*;
use gmmu_simt::gpu::run_kernel;

fn main() {
    // 1. Build one of the paper's workloads. The builder lays the
    //    benchmark's data structures out in a fresh unified address
    //    space with real x86-64 page tables.
    let workload = build(Bench::Bfs, Scale::Tiny, 42);
    println!(
        "workload: {} ({} MB mapped, {} page-table nodes)",
        workload.kernel.name(),
        workload.space.mapped_bytes() >> 20,
        workload.space.page_table_nodes(),
    );

    // 2. Describe the GPU. `experiment_scale` is an 8-core machine with
    //    the paper's core-to-channel balance; swap the MMU per run.
    let gpu = |mmu| {
        let mut cfg = GpuConfig::experiment_scale(mmu);
        cfg.n_cores = 2; // keep the quickstart quick
        cfg.mem.channels = 1;
        cfg
    };

    // 3. Run: the no-TLB ideal (the paper's baseline), the naive
    //    CPU-style MMU, and the paper's augmented design.
    let ideal = run_kernel(
        gpu(MmuModel::Ideal),
        workload.kernel.as_ref(),
        &workload.space,
    );
    let naive = run_kernel(
        gpu(MmuModel::naive()),
        workload.kernel.as_ref(),
        &workload.space,
    );
    let augmented = run_kernel(
        gpu(MmuModel::augmented()),
        workload.kernel.as_ref(),
        &workload.space,
    );

    let mut table = Table::new(
        "bfs on three MMU designs",
        &["design", "cycles", "speedup", "TLB miss %", "page div"],
    );
    for (name, s) in [
        ("ideal (no TLB)", &ideal),
        ("naive CPU-style", &naive),
        ("augmented (paper)", &augmented),
    ] {
        table.row(vec![
            name.into(),
            s.cycles.into(),
            s.speedup_vs(&ideal).into(),
            (100.0 * s.tlb_miss_rate()).into(),
            s.page_divergence.mean().into(),
        ]);
    }
    println!("{table}");
    println!(
        "the paper's insight: the augmented MMU recovers {:.0}% of what the naive design loses",
        100.0 * (augmented.speedup_vs(&ideal) - naive.speedup_vs(&ideal))
            / (1.0 - naive.speedup_vs(&ideal)).max(1e-9)
    );
}
