//! Calibration probe: ideal vs naive vs augmented per benchmark.
use gmmu_core::mmu::MmuModel;
use gmmu_simt::{gpu::run_kernel, GpuConfig};
use gmmu_workloads::{build, Bench, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Small,
    };
    for bench in Bench::all() {
        let w = build(bench, scale, 7);
        let cfg = |mmu| GpuConfig {
            ..gmmu_simt::GpuConfig::experiment_scale(mmu)
        };
        let t0 = std::time::Instant::now();
        let ideal = run_kernel(cfg(MmuModel::Ideal), w.kernel.as_ref(), &w.space);
        let t_ideal = t0.elapsed();
        let t1 = std::time::Instant::now();
        let naive = run_kernel(cfg(MmuModel::naive()), w.kernel.as_ref(), &w.space);
        let t_naive = t1.elapsed();
        let aug = run_kernel(cfg(MmuModel::augmented()), w.kernel.as_ref(), &w.space);
        println!("{bench:>14}: ideal_ipc={:.2} naive={:.3} aug={:.3} | miss={:.2} pdiv={:.1}/{} walklat={:.0} l1lat={:.0} l1miss={:.2} idle={:.2} | t={:.1?}/{:.1?}",
            ideal.ipc(),
            naive.speedup_vs(&ideal), aug.speedup_vs(&ideal),
            naive.tlb_miss_rate(), naive.page_divergence.mean(), naive.page_divergence.max(),
            naive.tlb_miss_latency.mean(), naive.l1_miss_latency.mean(), ideal.l1_miss_rate(),
            naive.idle_fraction(), t_ideal, t_naive);
    }
}
