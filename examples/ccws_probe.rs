//! CCWS diagnostics: does lost-locality scoring engage at all?
use gmmu_core::ccws::PolicyKind;
use gmmu_core::mmu::MmuModel;
use gmmu_simt::{Gpu, GpuConfig};
use gmmu_workloads::{build, Bench, Scale};

fn main() {
    for bench in [
        Bench::Streamcluster,
        Bench::Memcached,
        Bench::Bfs,
        Bench::Mummergpu,
    ] {
        let w = build(bench, Scale::Small, 7);
        for (name, pol, mmu) in [
            ("rr-ideal", PolicyKind::None, MmuModel::Ideal),
            ("ccws-ideal", PolicyKind::Ccws, MmuModel::Ideal),
        ] {
            let mut cfg = GpuConfig::experiment_scale(mmu);
            cfg.policy = pol;
            let mut gpu = Gpu::new(cfg);
            let s = gpu.run(w.kernel.as_ref(), &w.space);
            let events: u64 = gpu
                .cores()
                .iter()
                .map(|c| c.policy_ref().events.get())
                .sum();
            let totals: u64 = gpu
                .cores()
                .iter()
                .map(|c| c.policy_ref().lls().total())
                .sum();
            println!("{bench:>14} {name:>10}: cycles={} l1hit={:.2} vta_events={events} lls_total={totals}",
                s.cycles, 1.0 - s.l1_miss_rate());
        }
    }
}
