//! Design-space exploration with the public API: sweep TLB geometry
//! and walker organization for one workload and print the frontier.
//!
//! This is the kind of study a downstream architect would run when
//! sizing an MMU for their own accelerator.
//!
//! ```text
//! cargo run --release --example design_space [-- bench]
//! ```

use gmmu::prelude::*;
use gmmu_simt::gpu::run_kernel;

fn main() {
    let bench = match std::env::args().nth(1).as_deref() {
        Some("mummergpu") => Bench::Mummergpu,
        Some("memcached") => Bench::Memcached,
        Some("kmeans") => Bench::Kmeans,
        _ => Bench::Streamcluster,
    };
    let workload = build(bench, Scale::Tiny, 11);
    let base_cfg = || {
        let mut cfg = GpuConfig::experiment_scale(MmuModel::Ideal);
        cfg.n_cores = 2;
        cfg.mem.channels = 1;
        cfg
    };
    let ideal = run_kernel(base_cfg(), workload.kernel.as_ref(), &workload.space);

    let mut table = Table::new(
        &format!("{bench}: TLB geometry × walker (speedup vs no TLB)"),
        &["entries", "ports", "mode", "walker", "speedup", "miss %"],
    );
    for entries in [64usize, 128, 256] {
        for ports in [3usize, 4] {
            for (mode_name, mode) in [
                ("blocking", TlbMode::Blocking),
                ("hum+overlap", TlbMode::HitUnderMissOverlap),
            ] {
                for (walker_name, walker) in [
                    ("serial", WalkerConfig::serial()),
                    ("coalesced", WalkerConfig::coalesced()),
                ] {
                    let mut cfg = base_cfg();
                    cfg.mmu = MmuModel::Real {
                        tlb: TlbConfig {
                            entries,
                            ports,
                            mode,
                            ..TlbConfig::naive()
                        },
                        walker,
                    };
                    let s = run_kernel(cfg, workload.kernel.as_ref(), &workload.space);
                    table.row(vec![
                        (entries as u64).into(),
                        (ports as u64).into(),
                        mode_name.into(),
                        walker_name.into(),
                        s.speedup_vs(&ideal).into(),
                        (100.0 * s.tlb_miss_rate()).into(),
                    ]);
                }
            }
        }
    }
    println!("{table}");
    println!("(CSV below for plotting)\n");
    // The same table as machine-readable output.
    print!("{}", table.to_csv());
}
