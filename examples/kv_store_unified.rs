//! A GPU-accelerated key-value store with a unified address space —
//! the paper's memcached motivation (Section 5.1).
//!
//! In a unified CPU/GPU address space the GPU walks the *same* hash
//! table the CPU mutates: no copies, no pinning, pointers valid on
//! both sides. The price is GPU address translation. This example asks
//! the practical question a deployment would: how much lookup
//! throughput does each MMU design keep, and does a TLB-conscious
//! scheduler pay for itself?
//!
//! ```text
//! cargo run --release --example kv_store_unified
//! ```

use gmmu::prelude::*;
use gmmu_simt::gpu::run_kernel;

fn main() {
    // Experiment scale: large enough that the TLB-conscious scheduler
    // has warps worth throttling (at toy scales it never engages).
    let workload = build(Bench::Memcached, Scale::Small, 2026);
    println!(
        "key-value store: {} MB of buckets+items, Zipf(0.99) request mix\n",
        workload.space.mapped_bytes() >> 20
    );

    let base_cfg = || GpuConfig::experiment_scale(MmuModel::Ideal);

    let mut table = Table::new(
        "GET throughput under each translation design",
        &["design", "cycles", "relative req/s", "TLB miss %"],
    );
    let ideal = run_kernel(base_cfg(), workload.kernel.as_ref(), &workload.space);
    let configs: [(&str, MmuModel, PolicyKind); 4] = [
        (
            "no translation (upper bound)",
            MmuModel::Ideal,
            PolicyKind::None,
        ),
        ("naive CPU-style MMU", MmuModel::naive(), PolicyKind::None),
        ("augmented MMU", MmuModel::augmented(), PolicyKind::None),
        (
            "augmented + TCWS scheduler",
            MmuModel::augmented(),
            PolicyKind::tcws_best(),
        ),
    ];
    for (name, mmu, policy) in configs {
        let mut cfg = base_cfg();
        cfg.mmu = mmu;
        cfg.policy = policy;
        let s = run_kernel(cfg, workload.kernel.as_ref(), &workload.space);
        table.row(vec![
            name.into(),
            s.cycles.into(),
            (s.speedup_vs(&ideal)).into(),
            (100.0 * s.tlb_miss_rate()).into(),
        ]);
    }
    println!("{table}");
    println!(
        "reading: the augmented MMU keeps GET throughput within a few percent of the\n\
         no-translation bound — the unified address space is essentially free, which is\n\
         the paper's argument for building GPU MMUs rather than avoiding them."
    );
}
