//! Calibration probe for the intermediate design points of Figs 6-22.
use gmmu_core::ccws::PolicyKind;
use gmmu_core::mmu::MmuModel;
use gmmu_core::tlb::{TlbConfig, TlbMode};
use gmmu_core::walker::WalkerConfig;
use gmmu_simt::config::TbcConfig;
use gmmu_simt::{gpu::run_kernel, GpuConfig};
use gmmu_workloads::{build, Bench, Scale};

fn main() {
    let benches = [
        Bench::Bfs,
        Bench::Mummergpu,
        Bench::Streamcluster,
        Bench::Memcached,
    ];
    for bench in benches {
        let w = build(bench, Scale::Small, 7);
        let run = |cfg: GpuConfig| run_kernel(cfg, w.kernel.as_ref(), &w.space);
        let base = |mmu| GpuConfig::experiment_scale(mmu);
        let ideal = run(base(MmuModel::Ideal));
        let sp = |s: &gmmu_simt::RunStats| s.speedup_vs(&ideal);

        let tlb = |entries, ports, mode| TlbConfig {
            entries,
            ports,
            mode,
            ..TlbConfig::naive()
        };
        let mk = |t, w| MmuModel::Real { tlb: t, walker: w };

        let naive3 = run(base(mk(
            tlb(128, 3, TlbMode::Blocking),
            WalkerConfig::serial(),
        )));
        let naive4 = run(base(mk(
            tlb(128, 4, TlbMode::Blocking),
            WalkerConfig::serial(),
        )));
        let hum = run(base(mk(
            tlb(128, 4, TlbMode::HitUnderMiss),
            WalkerConfig::serial(),
        )));
        let ovl = run(base(mk(
            tlb(128, 4, TlbMode::HitUnderMissOverlap),
            WalkerConfig::serial(),
        )));
        let sched = run(base(mk(
            tlb(128, 4, TlbMode::HitUnderMissOverlap),
            WalkerConfig::coalesced(),
        )));
        let ptw8 = run(base(mk(
            tlb(128, 4, TlbMode::Blocking),
            WalkerConfig::serial_n(8),
        )));
        let big = run(base(mk(
            TlbConfig {
                entries: 512,
                ..tlb(512, 4, TlbMode::Blocking)
            },
            WalkerConfig::serial(),
        )));
        let idealtlb = run(base(MmuModel::ideal_large_tlb()));
        println!("{bench:>14} MMU: n3={:.2} n4={:.2} hum={:.2} ovl={:.2} sched={:.2} | ptw8={:.2} big512={:.2} idealTLB={:.2} refs_elim={:.2} walkL2={:.2}",
            sp(&naive3), sp(&naive4), sp(&hum), sp(&ovl), sp(&sched),
            sp(&ptw8), sp(&big), sp(&idealtlb), sched.walk_refs_eliminated(), sched.walk_l2_hit_rate);

        // CCWS family on augmented MMU
        let pol = |p: PolicyKind, mmu: MmuModel| {
            let mut c = base(mmu);
            c.policy = p;
            c
        };
        let ccws_notlb = run(pol(PolicyKind::Ccws, MmuModel::Ideal));
        let ccws_aug = run(pol(PolicyKind::Ccws, MmuModel::augmented()));
        let ta4 = run(pol(
            PolicyKind::TaCcws { tlb_weight: 4 },
            MmuModel::augmented(),
        ));
        let tcws = run(pol(PolicyKind::tcws_best(), MmuModel::augmented()));
        println!(
            "{bench:>14} CCWS: ccws_notlb={:.2} ccws_aug={:.2} ta4={:.2} tcws={:.2}",
            sp(&ccws_notlb),
            sp(&ccws_aug),
            sp(&ta4),
            sp(&tcws)
        );

        // TBC family
        let tbc = |t: Option<TbcConfig>, mmu: MmuModel| {
            let mut c = base(mmu);
            c.tbc = t;
            c
        };
        let tbc_notlb = run(tbc(Some(TbcConfig::baseline()), MmuModel::Ideal));
        let tbc_aug = run(tbc(Some(TbcConfig::baseline()), MmuModel::augmented()));
        let tbc_aware = run(tbc(Some(TbcConfig::tlb_aware(3)), MmuModel::augmented()));
        println!("{bench:>14} TBC:  tbc_notlb={:.2} tbc_aug={:.2} tbc_tlbaware3={:.2} (pdiv {:.1} vs {:.1})",
            sp(&tbc_notlb), sp(&tbc_aug), sp(&tbc_aware),
            tbc_aug.page_divergence.mean(), tbc_aware.page_divergence.mean());
    }
}
